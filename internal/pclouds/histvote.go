package pclouds

// Communication-efficient split finding. The SSE protocol's per-node
// traffic grows with the node's interval count and pays extra rounds for
// the alive-interval exact search (boundary.go). The two protocols here
// trade split exactness for constant, mergeable payloads:
//
//   - hist: every rank accumulates class frequencies over HistBins fixed
//     quantile bins per numeric attribute (built from the node's shared
//     sample, so all ranks agree on the bin edges), the histograms merge
//     associatively in a single all-reduce, and every rank evaluates the
//     merged boundaries identically. One collective per node; the split
//     threshold is quantized to a bin edge.
//
//   - vote: PV-Tree-style two-round attribute voting over the same bins.
//     Round 1: each rank nominates its VoteTopK locally best attributes
//     (a tiny all-gather) and a deterministic majority election picks up
//     to 2*VoteTopK candidates. Round 2: full bin statistics are
//     all-reduced for the elected attributes only, and the exact (within
//     bin resolution) winner over the elected set is chosen. Attributes
//     that look poor on every rank never cross the wire.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/histogram"
	"pclouds/internal/record"
)

// childIntervals builds the interval structures a child node's fused
// statistics accumulate over: the size-proportional QForNode count under
// SSE, the fixed HistBins count under hist/vote.
func (b *pbuilder) childIntervals(sample []record.Record, n int64) []*histogram.Intervals {
	q := b.cfg.Clouds.QForNode(n, b.nRoot)
	if b.cfg.Clouds.Split != clouds.SplitSSE {
		q = b.cfg.Clouds.HistBins
	}
	return clouds.BuildIntervals(b.schema, sample, q)
}

// localFixedBinStats returns this rank's fixed-bin statistics for the node:
// the fused statistics from the parent's partition pass when available,
// otherwise one streaming pass now (the root, resumed frontier tasks, or
// fusion off).
func (b *pbuilder) localFixedBinStats(t *nodeTask) (*clouds.NodeStats, error) {
	if t.localStats != nil {
		return t.localStats, nil
	}
	span := b.rec.Start("stats")
	defer span.End()
	local := clouds.NewNodeStats(b.schema, clouds.BuildIntervals(b.schema, t.sample, b.cfg.Clouds.HistBins))
	var localN int64
	if err := b.scanFrontier(t.file, func(r *record.Record) error {
		local.Add(*r)
		localN++
		return nil
	}); err != nil {
		return nil, err
	}
	b.stats.Build.RecordReads += localN
	b.chargeCPU(localN)
	return local, nil
}

// deriveSplitHist merges every rank's fixed-bin histograms in one
// all-reduce and evaluates the merged boundaries identically on every rank.
func (b *pbuilder) deriveSplitHist(t *nodeTask) (clouds.Candidate, error) {
	local, err := b.localFixedBinStats(t)
	if err != nil {
		return clouds.Candidate{}, err
	}
	bnd := b.rec.Start("boundary")
	defer bnd.End()
	// histogram.MergeCount is the shared associative histogram combine; the
	// streaming frontier (internal/stream) merges its window sketches with
	// the exact same op, so both layers inherit the same order-independence.
	flat, err := comm.AllReduceInt64(b.c, local.Flatten(), histogram.MergeCount)
	if err != nil {
		return clouds.Candidate{}, err
	}
	global := clouds.NewNodeStats(b.schema, intervalsOf(local))
	if err := global.Unflatten(flat); err != nil {
		return clouds.Candidate{}, err
	}
	return clouds.BestBoundarySplit(global), nil
}

// deriveSplitVote runs the two voting rounds. Every step after the
// all-gather is a deterministic function of identical inputs, so all ranks
// elect the same attributes and return the same candidate.
func (b *pbuilder) deriveSplitVote(t *nodeTask) (clouds.Candidate, error) {
	local, err := b.localFixedBinStats(t)
	if err != nil {
		return clouds.Candidate{}, err
	}
	bnd := b.rec.Start("boundary")
	defer bnd.End()

	// Round 1: nominate this rank's locally best attributes and elect.
	nominated := clouds.TopKAttrs(clouds.AttributeBest(local), b.cfg.Clouds.VoteTopK)
	ballots, err := comm.AllGather(b.c, encodeVote(nominated))
	if err != nil {
		return clouds.Candidate{}, err
	}
	votes := make([][]int, len(ballots))
	for i, raw := range ballots {
		if votes[i], err = decodeVote(raw); err != nil {
			return clouds.Candidate{}, err
		}
	}
	elected := electAttrs(votes, 2*b.cfg.Clouds.VoteTopK)
	if len(elected) == 0 {
		// No rank found any valid local split; the node becomes a leaf.
		return clouds.Candidate{Valid: false}, nil
	}

	// Round 2: merge full bin statistics for the elected attributes only.
	flat, err := local.FlattenAttrs(elected)
	if err != nil {
		return clouds.Candidate{}, err
	}
	gflat, err := comm.AllReduceInt64(b.c, flat, histogram.MergeCount)
	if err != nil {
		return clouds.Candidate{}, err
	}
	global := clouds.NewNodeStats(b.schema, intervalsOf(local))
	global.N = t.n
	copy(global.Class, t.classCounts)
	if err := global.UnflattenAttrs(elected, gflat); err != nil {
		return clouds.Candidate{}, err
	}
	return clouds.BestOfAttrs(clouds.AttributeBest(global), elected), nil
}

// electAttrs tallies every rank's nominations and elects up to electCount
// attributes: most votes first, lower attribute id breaking ties — a
// deterministic election every rank computes identically from the gathered
// ballots. The result is sorted ascending, the canonical layout order
// FlattenAttrs requires.
func electAttrs(ballots [][]int, electCount int) []int {
	tally := map[int]int{}
	for _, bal := range ballots {
		for _, a := range bal {
			tally[a]++
		}
	}
	attrs := make([]int, 0, len(tally))
	for a := range tally {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool {
		if tally[attrs[i]] != tally[attrs[j]] {
			return tally[attrs[i]] > tally[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})
	if len(attrs) > electCount {
		attrs = attrs[:electCount]
	}
	sort.Ints(attrs)
	return attrs
}

func encodeVote(attrs []int) []byte {
	out := make([]byte, 4+4*len(attrs))
	binary.LittleEndian.PutUint32(out, uint32(len(attrs)))
	for i, a := range attrs {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(a))
	}
	return out
}

func decodeVote(src []byte) ([]int, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("pclouds: truncated vote")
	}
	n := int(binary.LittleEndian.Uint32(src))
	if len(src) != 4+4*n {
		return nil, fmt.Errorf("pclouds: vote length %d, want %d", len(src), 4+4*n)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(binary.LittleEndian.Uint32(src[4+4*i:]))
	}
	return out, nil
}
