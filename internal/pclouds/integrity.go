package pclouds

// Collective corruption verdicts. With Config.Integrity on, every frontier
// scan is followed by a tiny MinLoc collective: each rank contributes +Inf
// when its scan was clean, or its own rank plus a JSON attribution payload
// when the scan failed. All ranks therefore agree — in the same round — on
// whether the level's data plane is intact, and when it is not, every rank
// holds the identical root-cause report (rank, file, offset, checksum
// detail) from the lowest-ranked victim. That symmetric error is what lets
// the recovery ladder in Build rewind all ranks together to the newest
// clean checkpoint instead of leaving the survivors blocked in the next
// collective while one rank errors out alone.
//
// The verdict is strictly gated on Config.Integrity so the default build's
// communication volume stays bit-identical with earlier releases.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"pclouds/internal/comm"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
)

// maxCorruptionRecoveries bounds the detect→quarantine→restore cycles one
// Build will attempt before surfacing the corruption to the caller.
const maxCorruptionRecoveries = 3

// ErrDataCorrupt is the sentinel for collectively-agreed data-plane
// corruption; every rank's error wraps it, so errors.Is works anywhere.
var ErrDataCorrupt = errors.New("pclouds: data corruption detected")

// CorruptionReport is the attribution every rank receives when a verdict
// fails: which rank hit the corruption, in which store file, at what
// physical offset, and the detector's one-line diagnosis (including the
// expected/actual CRC when a checksum mismatch triggered it).
type CorruptionReport struct {
	Rank   int    `json:"rank"`
	File   string `json:"file"`
	Offset int64  `json:"offset"`
	Detail string `json:"detail"`
}

func (r CorruptionReport) String() string {
	return fmt.Sprintf("rank %d, file %q, offset %d: %s", r.Rank, r.File, r.Offset, r.Detail)
}

// DataCorruptError carries a CorruptionReport; it is the same on every rank
// of the group, courtesy of the MinLoc verdict.
type DataCorruptError struct {
	Report CorruptionReport
}

func (e *DataCorruptError) Error() string {
	return fmt.Sprintf("pclouds: data corruption detected: %s", e.Report)
}

func (e *DataCorruptError) Unwrap() error { return ErrDataCorrupt }

// corruptionReport turns a local scan error into an attribution payload.
func corruptionReport(rank int, name string, err error) CorruptionReport {
	rep := CorruptionReport{Rank: rank, File: name, Detail: err.Error()}
	var ce *ooc.CorruptionError
	if errors.As(err, &ce) {
		rep.File = ce.File
		rep.Offset = ce.Offset
	}
	return rep
}

// dataVerdict is the collective: scanErr is this rank's local outcome for
// scanning name (nil when clean). Every rank must call it the same number
// of times per level — the SPMD structure of the build guarantees this, as
// every scan site runs once per task on every rank. It returns nil only
// when every rank was clean; otherwise the identical *DataCorruptError on
// every rank, built from the lowest-ranked victim's report.
func dataVerdict(c comm.Communicator, name string, scanErr error) error {
	value := math.Inf(1)
	var payload []byte
	if scanErr != nil {
		value = float64(c.Rank())
		rep := corruptionReport(c.Rank(), name, scanErr)
		payload, _ = json.Marshal(rep)
	}
	v, pl, err := comm.MinLoc(c, value, payload)
	if err != nil {
		return err
	}
	if math.IsInf(v, 1) {
		return nil
	}
	var rep CorruptionReport
	if jerr := json.Unmarshal(pl, &rep); jerr != nil {
		rep = CorruptionReport{Rank: int(v), Detail: "unattributed data-plane failure"}
	}
	return &DataCorruptError{Report: rep}
}

// scanFrontier streams every record of a store file through fn, exactly
// like scanStore — and, with integrity on, follows the scan with the
// collective verdict so a checksum failure on any rank surfaces
// symmetrically everywhere.
func (b *pbuilder) scanFrontier(name string, fn func(*record.Record) error) error {
	err := scanStore(b.store, name, fn)
	if !b.cfg.Integrity {
		return err
	}
	return dataVerdict(b.c, name, err)
}
