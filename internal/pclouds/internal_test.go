package pclouds

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pclouds/internal/clouds"
	"pclouds/internal/datagen"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

func TestAliveListCodec(t *testing.T) {
	list := []aliveInterval{
		{attrJ: 0, interval: 3, count: 17, leftBefore: []int64{5, 12}},
		{attrJ: 2, interval: 0, count: 1, leftBefore: []int64{0, 0}},
	}
	got, err := decodeAliveList(encodeAliveList(list, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(list, got) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, list)
	}
	// Empty list.
	got, err = decodeAliveList(encodeAliveList(nil, 2), 2)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty list roundtrip: %v %v", got, err)
	}
	// Corruption.
	if _, err := decodeAliveList([]byte{1, 2}, 2); err == nil {
		t.Fatal("short payload should fail")
	}
	raw := encodeAliveList(list, 2)
	if _, err := decodeAliveList(raw[:len(raw)-1], 2); err == nil {
		t.Fatal("truncated payload should fail")
	}
}

func TestPointBucketCodec(t *testing.T) {
	buckets := [][]clouds.Point{
		{{V: 1.5, Class: 0}, {V: -2, Class: 1}},
		nil,
		{{V: 9.25, Class: 1}},
	}
	into := make([][]clouds.Point, 3)
	if err := decodePointBuckets(encodePointBuckets(buckets), into); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(buckets[0], into[0]) || into[1] != nil || !reflect.DeepEqual(buckets[2], into[2]) {
		t.Fatalf("roundtrip mismatch: %+v", into)
	}
	// Merging two frames accumulates.
	if err := decodePointBuckets(encodePointBuckets(buckets), into); err != nil {
		t.Fatal(err)
	}
	if len(into[0]) != 4 {
		t.Fatalf("merge failed: %d points", len(into[0]))
	}
	// Bad index.
	if err := decodePointBuckets(encodePointBuckets(buckets), make([][]clouds.Point, 1)); err == nil {
		t.Fatal("out-of-range bucket should fail")
	}
}

func TestTaskRecordCodec(t *testing.T) {
	schema := datagen.Schema()
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	buckets := [][]record.Record{
		{g.Next(), g.Next()},
		nil,
		{g.Next()},
	}
	into := make([][]record.Record, 3)
	if err := decodeTaskRecords(schema, encodeTaskRecords(buckets), into); err != nil {
		t.Fatal(err)
	}
	if len(into[0]) != 2 || into[1] != nil || len(into[2]) != 1 {
		t.Fatalf("roundtrip shape: %v", into)
	}
	if into[0][1].Num[0] != buckets[0][1].Num[0] || into[2][0].Class != buckets[2][0].Class {
		t.Fatal("record contents mangled")
	}
	if err := decodeTaskRecords(schema, []byte{1, 2, 3}, into); err == nil {
		t.Fatal("corrupt frame should fail")
	}
}

func TestSubtreeCodec(t *testing.T) {
	results := [][]byte{nil, {1, 2, 3}, nil, {}}
	pairs, err := decodeSubtrees(encodeSubtrees(results))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs %d", len(pairs))
	}
	if pairs[0].idx != 1 || string(pairs[0].blob) != string([]byte{1, 2, 3}) {
		t.Fatalf("pair 0: %+v", pairs[0])
	}
	if pairs[1].idx != 3 || len(pairs[1].blob) != 0 {
		t.Fatalf("pair 1: %+v", pairs[1])
	}
	if _, err := decodeSubtrees([]byte{9}); err == nil {
		t.Fatal("corrupt frame should fail")
	}
}

func TestIntervalMappingProperties(t *testing.T) {
	f := func(nI8, p8 uint8) bool {
		nI := int(nI8%200) + 1
		p := int(p8%16) + 1
		m := intervalMapping([]int{nI}, p)
		return mappingValid(m.ownerOf[0], p, nI)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridMappingProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 300; iter++ {
		nAttrs := 1 + rng.Intn(8)
		counts := make([]int, nAttrs)
		total := 0
		for j := range counts {
			counts[j] = 1 + rng.Intn(50)
			total += counts[j]
		}
		p := 1 + rng.Intn(16)
		m := hybridMapping(counts, p)
		// Per-attribute monotone and in range.
		for j, owners := range m.ownerOf {
			if !mappingValid(owners, p, counts[j]) {
				t.Fatalf("attribute %d invalid owners %v (p=%d)", j, owners, p)
			}
		}
		// Global monotone along the concatenated stream.
		last := 0
		for _, owners := range m.ownerOf {
			for _, o := range owners {
				if o < last {
					t.Fatalf("hybrid mapping not monotone along the stream")
				}
				last = o
			}
		}
		// Balance: with enough intervals, every rank owns something.
		if total >= p {
			owned := make([]int, p)
			for _, owners := range m.ownerOf {
				for _, o := range owners {
					owned[o]++
				}
			}
			for r, c := range owned {
				if c == 0 {
					t.Fatalf("rank %d owns nothing (total=%d p=%d)", r, total, p)
				}
			}
		}
	}
}

func mappingValid(owners []int, p, nI int) bool {
	if len(owners) != nI {
		return false
	}
	last := 0
	for _, o := range owners {
		if o < 0 || o >= p || o < last {
			return false
		}
		last = o
	}
	return true
}

func TestAssignIntervalsDeterministicAndBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alive := make([]aliveInterval, 40)
	for i := range alive {
		alive[i] = aliveInterval{attrJ: i % 5, interval: i / 5, count: int64(1 + rng.Intn(1000))}
	}
	a := assignIntervals(alive, 4)
	b := assignIntervals(alive, 4)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("assignment not deterministic")
	}
	load := make([]float64, 4)
	for i, o := range a {
		n := float64(alive[i].count)
		cost := n
		if n >= 2 {
			cost = n * log2(n)
		}
		load[o] += cost
	}
	minL, maxL := load[0], load[0]
	for _, l := range load[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL > 2.5*minL {
		t.Fatalf("LPT assignment imbalanced: %v", load)
	}
}

func log2(x float64) float64 {
	n := 0.0
	for x > 1 {
		x /= 2
		n++
	}
	return n + x - 1 // crude; only used for rough balance checking
}

func TestBlockedSchemesAgreeOnOddGroupSizes(t *testing.T) {
	// Integration: the four boundary schemes must produce the identical
	// tree with q deliberately not a multiple of p, so block mappings split
	// attributes mid-range.
	g, _ := datagen.New(datagen.Config{Function: 6, Seed: 77})
	data := g.Generate(3000)
	cfg := testConfig(clouds.SSE)
	cfg.Clouds.QRoot = 97
	sample := cfg.Clouds.SampleFor(data)
	ref, _ := buildParallel(t, cfg, data, sample, 5) // AttributeBased
	for _, bm := range []BoundaryMethod{FullReplication, IntervalBased, Hybrid} {
		c := cfg
		c.Boundary = bm
		tr, _ := buildParallel(t, c, data, sample, 5)
		if !tree.Equal(ref, tr) {
			t.Fatalf("boundary method %v built a different tree", bm)
		}
	}
}
