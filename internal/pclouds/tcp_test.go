package pclouds

import (
	"net"
	"sync"
	"testing"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/ooc"
	"pclouds/internal/tree"
)

// TestBuildOverTCPMatchesSequential runs the whole pCLOUDS pipeline over
// real TCP sockets (the distributed transport) and asserts the result is
// the sequential CLOUDS tree — transport independence of the determinism
// property.
func TestBuildOverTCPMatchesSequential(t *testing.T) {
	const p = 3
	data := makeData(t, 2500, 2, 21)
	cfg := testConfig(clouds.SSE)
	sample := cfg.Clouds.SampleFor(data)

	seq, _, err := clouds.BuildInCore(cfg.Clouds, data, sample)
	if err != nil {
		t.Fatal(err)
	}

	// Reserve loopback ports.
	addrs := make([]string, p)
	lns := make([]net.Listener, p)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}

	trees := make([]*tree.Tree, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := tcpcomm.Dial(tcpcomm.Config{
				Rank: r, Addrs: addrs,
				Params:      costmodel.Zero(),
				DialTimeout: 15 * time.Second,
			})
			if err != nil {
				errs[r] = err
				return
			}
			defer c.Close()
			store := ooc.NewMemStore(data.Schema, costmodel.Zero(), c.Clock())
			w, err := store.CreateWriter("root")
			if err != nil {
				errs[r] = err
				return
			}
			for i := r; i < data.Len(); i += p {
				if err := w.Write(data.Records[i]); err != nil {
					errs[r] = err
					return
				}
			}
			if err := w.Close(); err != nil {
				errs[r] = err
				return
			}
			trees[r], _, errs[r] = Build(cfg, c, store, "root", sample)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < p; r++ {
		if !tree.Equal(seq, trees[r]) {
			t.Fatalf("rank %d's TCP-built tree differs from sequential", r)
		}
	}
}
