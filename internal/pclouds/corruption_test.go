package pclouds

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/fault"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

// Data-plane corruption chaos tests (ISSUE 10): a seeded bit flip in a
// rank's out-of-core store mid-build must be detected (never a silently
// wrong tree), collectively attributed to its file and offset, and — when
// checkpointing is on — recovered from the newest clean checkpoint to the
// bit-identical tree, with the corrupt artifact quarantined for post-mortem.

// stageIntegrityStore is stageFileStore with the verifying backend enabled
// before any byte is written, so the staged root is checksum-framed.
func stageIntegrityStore(dir string, rank, p int, data *record.Dataset) (*ooc.Store, error) {
	store, err := ooc.NewFileStore(data.Schema, dir, costmodel.Zero(), nil)
	if err != nil {
		return nil, err
	}
	store.EnableIntegrity(ooc.IntegrityOptions{})
	w, err := store.CreateWriter("root")
	if err != nil {
		return nil, err
	}
	for i := rank; i < data.Len(); i += p {
		if err := w.Write(data.Records[i]); err != nil {
			w.Close()
			return nil, err
		}
	}
	return store, w.Close()
}

// TestChaosCorruptionRecovered is the headline scenario: a 4-rank
// file-backed checkpointed build has one bit of rank 1's level-2 frontier
// flipped on disk right after the level-2 checkpoint commits. The next scan
// of that file must fail its CRC, every rank must agree on the corruption,
// rank 1 must quarantine the file, and the collective resume ladder must
// step back to level 1 (level 2 references the quarantined file) and
// rebuild — producing the bit-identical tree of an undisturbed build.
func TestChaosCorruptionRecovered(t *testing.T) {
	const p = 4
	data := makeData(t, 4000, 2, 42)
	cfg := testConfig(clouds.SSE)
	sample := cfg.Clouds.SampleFor(data)
	ref, _ := buildParallel(t, cfg, data, sample, p)

	ckptDir := t.TempDir()
	storeRoot := t.TempDir()
	stores := make([]*ooc.Store, p)
	for r := 0; r < p; r++ {
		st, err := stageIntegrityStore(filepath.Join(storeRoot, fmt.Sprintf("rank%d", r)), r, p, data)
		if err != nil {
			t.Fatal(err)
		}
		stores[r] = st
	}

	// flipFrontierBit corrupts one byte of the first pending frontier file
	// named by rank 1's just-committed level-2 manifest — the exact artifact
	// the next level's scans will read.
	var hookOnce sync.Once
	var hookErr error
	flipFrontierBit := func() {
		data, err := os.ReadFile(filepath.Join(ckptDir, "level-0002", "rank1.json"))
		if err != nil {
			hookErr = err
			return
		}
		var m ckptManifest
		if err := json.Unmarshal(data, &m); err != nil {
			hookErr = err
			return
		}
		tasks := m.Pending
		if len(tasks) == 0 {
			tasks = m.Small
		}
		if len(tasks) == 0 {
			hookErr = errors.New("level-2 manifest has no frontier tasks to corrupt")
			return
		}
		path := filepath.Join(storeRoot, "rank1", tasks[0].File)
		raw, err := os.ReadFile(path)
		if err != nil {
			hookErr = err
			return
		}
		idx := ooc.FrameHeaderSize + 84 // well inside the first frame's payload
		if idx >= len(raw) {
			idx = len(raw) - 1
		}
		raw[idx] ^= 0x40
		hookErr = os.WriteFile(path, raw, 0o644)
	}

	watchdog(t, "corruption recovery", func() {
		addrs := reservePorts(t, p)
		var wg sync.WaitGroup
		errs := make([]error, p)
		trees := make([]*tree.Tree, p)
		stats := make([]*Stats, p)
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c, err := chaosComm(r, addrs)
				if err != nil {
					errs[r] = err
					return
				}
				defer c.Close()
				kcfg := cfg
				kcfg.CheckpointDir = ckptDir
				kcfg.Integrity = true
				kcfg.Warnf = func(string, ...any) {} // expected noise
				if r == 1 {
					kcfg.LevelHook = func(level int) {
						if level == 2 {
							hookOnce.Do(flipFrontierBit)
						}
					}
				}
				trees[r], stats[r], errs[r] = Build(kcfg, c, stores[r], "root", sample)
			}(r)
		}
		wg.Wait()
		if hookErr != nil {
			t.Fatalf("corruption hook: %v", hookErr)
		}
		for r, err := range errs {
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
			}
		}
		if t.Failed() {
			return
		}
		for r := 0; r < p; r++ {
			if !tree.Equal(ref, trees[r]) {
				t.Errorf("rank %d: recovered tree differs from undisturbed build", r)
			}
			if stats[r].Recoveries != 1 {
				t.Errorf("rank %d: Recoveries = %d, want 1", r, stats[r].Recoveries)
			}
		}
		if stats[1].Quarantines != 1 {
			t.Errorf("rank 1: Quarantines = %d, want 1", stats[1].Quarantines)
		}
		if stats[1].Integrity.Corruptions == 0 {
			t.Error("rank 1: verifying backend counted no corruptions")
		}
		q, err := filepath.Glob(filepath.Join(storeRoot, "rank1", "*"+ooc.QuarantineSuffix))
		if err != nil || len(q) != 1 {
			t.Errorf("quarantined files in rank 1's store: %v (err %v), want exactly one", q, err)
		}
	})
}

// TestCorruptionDetectedAttributed is the no-checkpoint half of the
// acceptance criterion: without a checkpoint to fall back to, a persistent
// bit flip (injected into rank 2's store medium beneath the verifier) must
// surface on every rank as the same attributed DataCorruptError — never as
// a silently wrong tree, and never as a hang.
func TestCorruptionDetectedAttributed(t *testing.T) {
	const p = 4
	data := makeData(t, 2000, 1, 7)
	cfg := testConfig(clouds.SS)
	cfg.Integrity = true
	sample := cfg.Clouds.SampleFor(data)

	// One bit of rank 2's first written page is flipped on the medium, below
	// the verifying wrapper — exactly what a decaying disk does.
	inj := fault.NewInjector(31,
		fault.Rule{Rank: 2, Op: fault.OpWrite, Class: fault.AnyClass, Action: fault.Corrupt, Count: 1})

	watchdog(t, "attributed corruption", func() {
		comms := comm.NewGroup(p, costmodel.Zero())
		errs := make([]error, p)
		trees := make([]*tree.Tree, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				store := ooc.NewMemStore(data.Schema, costmodel.Zero(), comms[r].Clock())
				store.WrapBackend(fault.WrapBackend(inj, r))
				store.EnableIntegrity(ooc.IntegrityOptions{})
				w, err := store.CreateWriter("root")
				if err != nil {
					errs[r] = err
					return
				}
				for i := r; i < data.Len(); i += p {
					if err := w.Write(data.Records[i]); err != nil {
						errs[r] = err
						w.Close()
						return
					}
				}
				if err := w.Close(); err != nil {
					errs[r] = err
					return
				}
				trees[r], _, errs[r] = Build(cfg, comms[r], store, "root", sample)
			}(r)
		}
		wg.Wait()
		if got := inj.Stats().Corruptions; got != 1 {
			t.Fatalf("injected %d corruptions, want 1", got)
		}
		var want *CorruptionReport
		for r, err := range errs {
			if trees[r] != nil {
				t.Errorf("rank %d: produced a tree from corrupt data", r)
			}
			if !errors.Is(err, ErrDataCorrupt) {
				t.Errorf("rank %d: want ErrDataCorrupt, got %v", r, err)
				continue
			}
			var dce *DataCorruptError
			if !errors.As(err, &dce) {
				t.Errorf("rank %d: error carries no report: %v", r, err)
				continue
			}
			if dce.Report.Rank != 2 || dce.Report.File != "root" {
				t.Errorf("rank %d: report attributes rank %d file %q, want rank 2 file \"root\"", r, dce.Report.Rank, dce.Report.File)
			}
			if want == nil {
				want = &dce.Report
			} else if *want != dce.Report {
				t.Errorf("rank %d: report %+v differs from rank-agreed %+v", r, dce.Report, *want)
			}
		}
	})
}
