package pclouds

import (
	"fmt"
	"sort"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/gini"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

// Processor regrouping — the paper's stated future work ("we do not
// regroup the processors as they become idle, in our current implementation
// of task parallelism", Section 6). With Config.RegroupIdle set and fewer
// small tasks than processors, the small-node phase assigns each task a
// processor *subgroup* instead of a single owner: every rank belongs to
// some group (none idle), the task's records are shipped to all group
// members, and the group solves the subtree together by splitting the
// direct method's per-attribute exact searches across members (one
// min-combine per node). The resulting subtree is bit-identical to the
// single-owner result — only the load balance changes, which is what the
// scaleup tail of Figure 3 measures.

// groupAssignment describes the contiguous rank range solving each task.
type groupAssignment struct {
	lo, hi int // ranks [lo, hi)
}

// assignGroups splits p ranks into len(tasks) contiguous groups with sizes
// proportional to task cost (each at least 1), deterministically. Caller
// guarantees 0 < len(tasks) <= p.
func assignGroups(tasks []*nodeTask, p int) []groupAssignment {
	t := len(tasks)
	sizes := make([]int, t)
	for i := range sizes {
		sizes[i] = 1
	}
	// Apportion the extra ranks by the largest cost-per-assigned-rank
	// quotient (D'Hondt), breaking ties toward the earlier task.
	for extra := p - t; extra > 0; extra-- {
		best, bestQ := 0, -1.0
		for i := range tasks {
			q := float64(tasks[i].n) / float64(sizes[i]+1)
			if q > bestQ {
				best, bestQ = i, q
			}
		}
		sizes[best]++
	}
	out := make([]groupAssignment, t)
	lo := 0
	for i := range out {
		out[i] = groupAssignment{lo: lo, hi: lo + sizes[i]}
		lo += sizes[i]
	}
	return out
}

// smallNodePhaseRegroup is the regrouped variant of the small-node phase.
func (b *pbuilder) smallNodePhaseRegroup(small []*nodeTask) error {
	sort.Slice(small, func(i, j int) bool { return small[i].id < small[j].id })
	b.stats.SmallTasks = len(small)
	p := b.c.Size()
	rank := b.c.Rank()
	groups := assignGroups(small, p)

	// Ship each task's records to every member of its group, in one
	// all-to-all.
	rspan := b.rec.Start("small-redistribute")
	perDest := make([][][]record.Record, p)
	for d := range perDest {
		perDest[d] = make([][]record.Record, len(small))
	}
	for i, t := range small {
		g := groups[i]
		var localN int64
		if err := b.scanFrontier(t.file, func(r *record.Record) error {
			localN++
			rec := r.Clone()
			for d := g.lo; d < g.hi; d++ {
				perDest[d][i] = append(perDest[d][i], rec)
			}
			return nil
		}); err != nil {
			return err
		}
		b.stats.Build.RecordReads += localN
		b.chargeCPU(localN)
		for d := g.lo; d < g.hi; d++ {
			if d != rank {
				b.stats.RecordsShipped += localN
			}
		}
		b.removeFile(t.file)
	}
	parts := make([][]byte, p)
	for d := 0; d < p; d++ {
		parts[d] = encodeTaskRecords(perDest[d])
	}
	recv, err := comm.AllToAll(b.c, parts)
	if err != nil {
		return err
	}
	taskRecs := make([][]record.Record, len(small))
	for _, raw := range recv {
		if err := decodeTaskRecords(b.schema, raw, taskRecs); err != nil {
			return err
		}
	}
	rspan.End()

	// Identify this rank's group and build its tasks cooperatively.
	gspan := b.rec.Start("small-solve")
	results := make([][]byte, len(small))
	myGroup := -1
	for i, g := range groups {
		if rank >= g.lo && rank < g.hi {
			myGroup = i
			break
		}
	}
	if myGroup < 0 {
		return fmt.Errorf("pclouds: rank %d not in any regrouped assignment", rank)
	}
	g := groups[myGroup]
	ranks := make([]int, 0, g.hi-g.lo)
	for r := g.lo; r < g.hi; r++ {
		ranks = append(ranks, r)
	}
	sub, err := comm.NewSub(b.c, ranks)
	if err != nil {
		return err
	}
	t := small[myGroup]
	nd, err := b.groupSolve(sub, t, taskRecs[myGroup])
	if err != nil {
		return err
	}
	if sub.Rank() == 0 {
		results[myGroup] = tree.Encode(&tree.Tree{Schema: b.schema, Root: nd})
	}
	gspan.End()

	// Exchange the finished subtrees (as in the single-owner phase).
	espan := b.rec.Start("small-exchange")
	defer espan.End()
	gathered, err := comm.AllGather(b.c, encodeSubtrees(results))
	if err != nil {
		return err
	}
	attached := 0
	for _, raw := range gathered {
		pairs, err := decodeSubtrees(raw)
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			if pr.idx < 0 || pr.idx >= len(small) {
				return fmt.Errorf("pclouds: subtree index %d out of range", pr.idx)
			}
			dt, err := tree.Decode(b.schema, pr.blob)
			if err != nil {
				return err
			}
			small[pr.idx].attach(dt.Root)
			attached++
		}
	}
	if attached != len(small) {
		return fmt.Errorf("pclouds: attached %d subtrees, expected %d", attached, len(small))
	}
	return nil
}

// groupSolve builds one small task's subtree cooperatively on subgroup sub:
// every member holds the full record set; at each node the per-attribute
// exact searches are divided among members and a min-combine selects the
// winner. The tree is identical to the sequential direct-method result.
func (b *pbuilder) groupSolve(sub comm.Communicator, t *nodeTask, recs []record.Record) (*tree.Node, error) {
	var build func(recs []record.Record, depth int) (*tree.Node, error)
	build = func(recs []record.Record, depth int) (*tree.Node, error) {
		n := int64(len(recs))
		counts := make([]int64, b.schema.NumClasses)
		for _, r := range recs {
			counts[r.Class]++
		}
		leaf := func() *tree.Node {
			nd := &tree.Node{ClassCounts: counts, N: n}
			nd.Class = nd.Majority()
			return nd
		}
		if b.cfg.Clouds.ShouldStop(counts, n, depth) {
			return leaf(), nil
		}
		cand, err := b.distributedDirectSplit(sub, recs, counts, n)
		if err != nil {
			return nil, err
		}
		if !cand.Valid {
			return leaf(), nil
		}
		sp := cand.Splitter()
		var left, right []record.Record
		for _, r := range recs {
			if sp.GoesLeft(b.schema, r) {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			return leaf(), nil
		}
		nd := &tree.Node{Splitter: sp, ClassCounts: counts, N: n}
		nd.Class = nd.Majority()
		if nd.Left, err = build(left, depth+1); err != nil {
			return nil, err
		}
		if nd.Right, err = build(right, depth+1); err != nil {
			return nil, err
		}
		return nd, nil
	}
	return build(recs, t.depth)
}

// distributedDirectSplit is the direct method with its per-attribute exact
// searches divided across the subgroup: member k evaluates the attributes
// with position % size == k, and a min-combine picks the global best. The
// result equals clouds.DirectSplit on the same records.
func (b *pbuilder) distributedDirectSplit(sub comm.Communicator, recs []record.Record, total []int64, nTotal int64) (clouds.Candidate, error) {
	size, rank := sub.Size(), sub.Rank()
	myBest := clouds.Candidate{Valid: false}
	pts := make([]clouds.Point, len(recs))
	assigned := 0

	for j, attr := range b.schema.NumericIndices() {
		if attr%size != rank {
			continue
		}
		assigned++
		for i, r := range recs {
			pts[i] = clouds.Point{V: r.Num[j], Class: r.Class}
		}
		cand := clouds.EvaluateInterval(attr, make([]int64, len(total)), total, pts)
		if cand.Better(myBest) {
			myBest = cand
		}
	}

	for j, attr := range b.schema.CategoricalIndices() {
		if attr%size != rank {
			continue
		}
		assigned++
		cm := gini.NewCountMatrix(b.schema.Attrs[attr].Cardinality, b.schema.NumClasses)
		for _, r := range recs {
			cm.Add(r.Cat[j], r.Class)
		}
		ss := cm.BestSubsetSplit()
		var nLeft int64
		for v, in := range ss.InLeft {
			if in {
				nLeft += gini.Sum(cm.Counts[v])
			}
		}
		if nLeft == 0 || nLeft == nTotal {
			continue
		}
		cand := clouds.Candidate{
			Valid: true, Gini: ss.Gini,
			Attr: attr, Kind: tree.CategoricalSplit, InLeft: ss.InLeft,
		}
		if cand.Better(myBest) {
			myBest = cand
		}
	}

	// Charge this member's share of the sort/scan work (~2 touches per
	// record per assigned attribute).
	if b.cfg.CPUPerRecord > 0 && assigned > 0 {
		totalAttrs := len(b.schema.Attrs)
		b.c.Clock().Advance(float64(2*len(recs)*assigned) / float64(totalAttrs) * b.cfg.CPUPerRecord)
	}
	return combineCandidates(sub, myBest)
}
