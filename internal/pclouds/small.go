package pclouds

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

// smallNodePhase is the delayed task-parallel phase: every deferred small
// node is assigned to exactly one processor (cost-based,
// longest-processing-time first), the nodes' data is redistributed in one
// batched all-to-all (compute-dependent parallel I/O), each owner builds
// its subtrees in-memory with the direct method, and the finished subtrees
// are exchanged so every rank attaches identical results.
func (b *pbuilder) smallNodePhase(small []*nodeTask) error {
	if len(small) == 0 {
		return nil
	}
	// The small list is produced in identical BFS order on every rank; sort
	// by id anyway as a belt-and-braces determinism guarantee.
	sort.Slice(small, func(i, j int) bool { return small[i].id < small[j].id })
	b.stats.SmallTasks = len(small)

	p := b.c.Size()
	rank := b.c.Rank()
	owner := assignTasks(small, p)

	// Ship every record of every small node to its owner, batched into one
	// exchange. Frame per task: [u32 taskIdx][u32 n][n records].
	rspan := b.rec.Start("small-redistribute")
	perDest := make([][][]record.Record, p)
	for d := range perDest {
		perDest[d] = make([][]record.Record, len(small))
	}
	for i, t := range small {
		d := owner[i]
		var localN int64
		if err := b.scanFrontier(t.file, func(r *record.Record) error {
			localN++
			perDest[d][i] = append(perDest[d][i], r.Clone())
			return nil
		}); err != nil {
			return err
		}
		b.stats.Build.RecordReads += localN
		b.chargeCPU(localN)
		if d != rank {
			b.stats.RecordsShipped += localN
		}
		b.removeFile(t.file)
	}
	parts := make([][]byte, p)
	for d := 0; d < p; d++ {
		parts[d] = encodeTaskRecords(perDest[d])
	}
	recv, err := comm.AllToAll(b.c, parts)
	if err != nil {
		return err
	}

	// Owners assemble their tasks' records.
	taskRecs := make([][]record.Record, len(small))
	for _, raw := range recv {
		if err := decodeTaskRecords(b.schema, raw, taskRecs); err != nil {
			return err
		}
	}
	rspan.End()

	// Build owned subtrees locally; no further communication until the
	// exchange of results.
	bspan := b.rec.Start("small-solve")
	results := make([][]byte, len(small))
	for i, t := range small {
		if owner[i] != rank {
			continue
		}
		nd, st := clouds.BuildSubtree(b.cfg.Clouds, b.schema, taskRecs[i], t.sample, t.depth, b.nRoot)
		b.stats.Build.RecordReads += st.RecordReads
		b.chargeCPU(st.RecordReads)
		b.stats.Build.AlivePoints += st.AlivePoints
		b.stats.Build.BoundaryEvaluated += st.BoundaryEvaluated
		b.stats.Build.AliveIntervals += st.AliveIntervals
		b.stats.Build.SmallNodes += st.SmallNodes
		b.stats.Build.LargeNodes += st.LargeNodes
		results[i] = tree.Encode(&tree.Tree{Schema: b.schema, Root: nd})
	}
	bspan.End()

	// Exchange the encoded subtrees so every rank attaches the same tree.
	espan := b.rec.Start("small-exchange")
	defer espan.End()
	gathered, err := comm.AllGather(b.c, encodeSubtrees(results))
	if err != nil {
		return err
	}
	attached := 0
	for _, raw := range gathered {
		pairs, err := decodeSubtrees(raw)
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			if pr.idx < 0 || pr.idx >= len(small) {
				return fmt.Errorf("pclouds: subtree index %d out of range", pr.idx)
			}
			t, err := tree.Decode(b.schema, pr.blob)
			if err != nil {
				return err
			}
			small[pr.idx].attach(t.Root)
			attached++
		}
	}
	if attached != len(small) {
		return fmt.Errorf("pclouds: attached %d subtrees, expected %d", attached, len(small))
	}
	return nil
}

// assignTasks maps small nodes to owners, longest-processing-time first by
// global node size; deterministic on every rank.
func assignTasks(tasks []*nodeTask, p int) []int {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if tasks[idx[a]].n != tasks[idx[b]].n {
			return tasks[idx[a]].n > tasks[idx[b]].n
		}
		return tasks[idx[a]].id < tasks[idx[b]].id
	})
	load := make([]int64, p)
	owner := make([]int, len(tasks))
	for _, i := range idx {
		best := 0
		for r := 1; r < p; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		owner[i] = best
		load[best] += tasks[i].n
	}
	return owner
}

func encodeTaskRecords(buckets [][]record.Record) []byte {
	var out []byte
	var b4 [4]byte
	for i, recs := range buckets {
		if len(recs) == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(b4[:], uint32(i))
		out = append(out, b4[:]...)
		binary.LittleEndian.PutUint32(b4[:], uint32(len(recs)))
		out = append(out, b4[:]...)
		for _, r := range recs {
			out = r.Encode(out)
		}
	}
	return out
}

func decodeTaskRecords(schema *record.Schema, src []byte, into [][]record.Record) error {
	rb := schema.RecordBytes()
	for len(src) > 0 {
		if len(src) < 8 {
			return fmt.Errorf("pclouds: truncated task record frame")
		}
		idx := int(binary.LittleEndian.Uint32(src))
		n := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if idx < 0 || idx >= len(into) {
			return fmt.Errorf("pclouds: task record index %d out of range", idx)
		}
		if len(src) < n*rb {
			return fmt.Errorf("pclouds: truncated task record body")
		}
		for k := 0; k < n; k++ {
			var rec record.Record
			if _, err := rec.Decode(schema, src[:rb]); err != nil {
				return err
			}
			into[idx] = append(into[idx], rec)
			src = src[rb:]
		}
	}
	return nil
}

type subtreePair struct {
	idx  int
	blob []byte
}

func encodeSubtrees(results [][]byte) []byte {
	var out []byte
	var b8 [8]byte
	for i, blob := range results {
		if blob == nil {
			continue
		}
		binary.LittleEndian.PutUint32(b8[:4], uint32(i))
		out = append(out, b8[:4]...)
		binary.LittleEndian.PutUint64(b8[:], uint64(len(blob)))
		out = append(out, b8[:]...)
		out = append(out, blob...)
	}
	return out
}

func decodeSubtrees(src []byte) ([]subtreePair, error) {
	var out []subtreePair
	for len(src) > 0 {
		if len(src) < 12 {
			return nil, fmt.Errorf("pclouds: truncated subtree frame")
		}
		idx := int(binary.LittleEndian.Uint32(src))
		n := int(binary.LittleEndian.Uint64(src[4:]))
		src = src[12:]
		if n < 0 || n > len(src) {
			return nil, fmt.Errorf("pclouds: corrupt subtree length %d", n)
		}
		out = append(out, subtreePair{idx: idx, blob: src[:n]})
		src = src[n:]
	}
	return out, nil
}
