// Package dnc is the paper's generic framework for parallel out-of-core
// divide-and-conquer (Section 3). A Problem describes one task of the
// divide-and-conquer tree in three pieces — a mergeable summary computed in
// one pass over the task's records, a decision (leaf or split) taken on the
// globally combined summary, and a routing rule that partitions records
// between the two subtasks. The Engine executes the tree over data that is
// distributed across ranks and disk-resident on each, under one of four
// strategies:
//
//	DataParallel    tasks solved one after another by all processors
//	Concatenated    all tasks of a tree level solved together (batched
//	                collectives; memory shared across the level)
//	TaskParallel    partitioned tree construction: processor subgroups
//	                recursively take subtasks, moving the data to the
//	                subgroup (compute-dependent parallel I/O)
//	Mixed           data parallelism for large tasks, then delayed task
//	                parallelism for small ones (the pCLOUDS recipe)
//
// All strategies produce identical leaf results for a deterministic
// Problem; they differ in communication structure, I/O volume and simulated
// time, which is exactly what the strategy ablation experiment measures.
package dnc

import (
	"encoding/binary"
	"fmt"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
)

// Task identifies one node of the divide-and-conquer tree.
type Task struct {
	// ID is the root-to-node path: "r", then "rL"/"rR", and so on.
	ID string
	// Depth is the node's depth (root = 0).
	Depth int
	// N is the task's global record count.
	N int64
}

// Decision is the outcome of inspecting a task's global summary.
type Decision struct {
	// Leaf stops recursion; Result is the task's final result, recorded in
	// the run's leaf map.
	Leaf   bool
	Result []byte
	// Payload parameterises Route for internal tasks (e.g. an encoded
	// pivot).
	Payload []byte
}

// Problem defines a divide-and-conquer computation over records.
// Implementations must be deterministic functions of their inputs: every
// rank evaluates Decide on the same global summary and must reach the same
// decision.
type Problem interface {
	// SummaryLen returns the length of the int64 summary vector for a task.
	SummaryLen(t Task) int
	// Accumulate folds one record into a summary vector.
	Accumulate(t Task, sum []int64, rec *record.Record)
	// Decide inspects the globally combined summary.
	Decide(t Task, global []int64) (Decision, error)
	// Route sends a record to child 0 (left) or 1 (right).
	Route(t Task, payload []byte, rec *record.Record) int
}

// Strategy selects the parallelisation technique.
type Strategy int

const (
	// DataParallel solves tasks one at a time with all processors.
	DataParallel Strategy = iota
	// Concatenated solves each tree level's tasks together.
	Concatenated
	// TaskParallel is partitioned tree construction with compute-dependent
	// parallel I/O.
	TaskParallel
	// Mixed is data parallelism for large tasks followed by delayed task
	// parallelism for small tasks.
	Mixed
	// TaskParallelCI is task parallelism with compute-independent parallel
	// I/O: subtasks are assigned to processors but the data never moves.
	TaskParallelCI
)

func (s Strategy) String() string {
	switch s {
	case DataParallel:
		return "data-parallel"
	case Concatenated:
		return "concatenated"
	case TaskParallel:
		return "task-parallel"
	case Mixed:
		return "mixed"
	case TaskParallelCI:
		return "task-parallel-ci"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// RunStats aggregates a run's work counters. Counters are rank-local until
// Reduce combines them.
type RunStats struct {
	Tasks         int64
	LeafTasks     int64
	RecordReads   int64
	Redistributed int64 // records shipped between ranks
	Collectives   int64
}

// add accumulates o into s.
func (s *RunStats) add(o RunStats) {
	s.Tasks += o.Tasks
	s.LeafTasks += o.LeafTasks
	s.RecordReads += o.RecordReads
	s.Redistributed += o.Redistributed
	s.Collectives += o.Collectives
}

// Result is the outcome of a run at one rank.
type Result struct {
	// Leaves maps task IDs to leaf results. Strategies guarantee that rank
	// 0's map is complete; other ranks may hold partial views.
	Leaves map[string][]byte
	// Stats holds globally summed counters (identical on every rank).
	Stats RunStats
	// SimTime is this rank's simulated clock at completion.
	SimTime float64
}

// Engine runs divide-and-conquer trees for one rank.
type Engine struct {
	// C is the rank's communicator.
	C comm.Communicator
	// Store holds the rank's private disk-resident task files.
	Store *ooc.Store
	// Mem is the per-rank memory budget for in-core processing (nil =
	// unlimited).
	Mem *ooc.MemLimit
	// SwitchN is the mixed strategy's threshold: tasks with global N below
	// it are deferred to the task-parallel phase. Ignored by the other
	// strategies.
	SwitchN int64
	// MaxDepth caps recursion as a safety net (0 = unlimited).
	MaxDepth int
	// Params supplies machine constants for strategy-specific simulated
	// charges (e.g. the concatenated strategy's buffer-pressure seeks).
	Params costmodel.Params
	// Trace, when non-nil, records per-phase spans for this rank's run
	// (see package obs). Like pclouds.Config.Trace, enable it on every
	// rank of the group or none.
	Trace *obs.Recorder

	stats  RunStats
	leaves map[string][]byte
}

// taskFile names the store file holding a task's local records.
func taskFile(id string) string { return "task-" + id }

// Run executes problem p over the distributed data already staged in each
// rank's store under taskFile(rootID). Every rank must call Run with the
// same arguments.
func (e *Engine) Run(p Problem, rootID string, strategy Strategy) (*Result, error) {
	e.stats = RunStats{}
	e.leaves = make(map[string][]byte)
	e.Trace.SetClock(e.C.Clock())
	e.Trace.SetComm(e.C.Stats)
	e.Trace.AddIO("store", e.Store.Stats)
	rspan := e.Trace.StartID("dnc-run", strategy.String())
	defer rspan.End()
	localN, err := e.Store.Count(taskFile(rootID))
	if err != nil {
		return nil, err
	}
	total, err := comm.AllReduceInt64(e.C, []int64{localN}, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	root := Task{ID: rootID, Depth: 0, N: total[0]}

	switch strategy {
	case DataParallel:
		err = e.runDataParallel(p, []Task{root})
	case Concatenated:
		err = e.runConcatenated(p, root)
	case TaskParallel:
		err = e.runTaskParallel(p, root, e.C)
	case Mixed:
		err = e.runMixed(p, root)
	case TaskParallelCI:
		err = e.runTaskParallelCI(p, root)
	default:
		err = fmt.Errorf("dnc: unknown strategy %d", strategy)
	}
	if err != nil {
		return nil, err
	}

	// Collect every rank's leaf results at rank 0 so its map is complete
	// regardless of strategy (task-parallel phases record leaves only at
	// the solving rank).
	fspan := e.Trace.Start("dnc-finalize")
	defer fspan.End()
	gathered, err := comm.Gather(e.C, 0, encodeLeafMap(e.leaves))
	if err != nil {
		return nil, err
	}
	if e.C.Rank() == 0 {
		for _, raw := range gathered {
			m, err := decodeLeafMap(raw)
			if err != nil {
				return nil, err
			}
			for k, v := range m {
				e.leaves[k] = v
			}
		}
	}

	// Globally sum the work counters so every rank reports the same run.
	vec := []int64{e.stats.Tasks, e.stats.LeafTasks, e.stats.RecordReads, e.stats.Redistributed, e.stats.Collectives}
	sum, err := comm.AllReduceInt64(e.C, vec, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, err
	}
	res := &Result{
		Leaves: e.leaves,
		Stats: RunStats{
			// Task counts are incremented once per task on rank 0 only, so
			// the sum is the true count; record reads sum over ranks.
			Tasks: sum[0], LeafTasks: sum[1], RecordReads: sum[2],
			Redistributed: sum[3], Collectives: sum[4],
		},
		SimTime: e.C.Clock().Time(),
	}
	return res, nil
}

// countTask bumps the task counters on rank 0 only, so the global sum is a
// plain count.
func (e *Engine) countTask(c comm.Communicator, leaf bool) {
	if c.Rank() == 0 {
		e.stats.Tasks++
		if leaf {
			e.stats.LeafTasks++
		}
	}
}

// summarize streams a task's local file into a fresh summary vector.
func (e *Engine) summarize(p Problem, t Task) ([]int64, error) {
	span := e.Trace.StartID("dnc-summarize", t.ID)
	defer span.End()
	sum := make([]int64, p.SummaryLen(t))
	n, err := e.streamTask(t, func(rec *record.Record) error {
		p.Accumulate(t, sum, rec)
		return nil
	})
	e.stats.RecordReads += n
	return sum, err
}

// streamTask scans a task's local file, returning the record count.
func (e *Engine) streamTask(t Task, fn func(*record.Record) error) (int64, error) {
	r, err := e.Store.OpenReader(taskFile(t.ID))
	if err != nil {
		return 0, err
	}
	defer r.Close()
	var rec record.Record
	var n int64
	for {
		ok, err := r.Next(&rec)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
		if err := fn(&rec); err != nil {
			return n, err
		}
	}
}

// partitionTask streams a task file into its two child files, returning the
// local child record counts. The parent file is removed.
func (e *Engine) partitionTask(p Problem, t Task, payload []byte) ([2]int64, error) {
	span := e.Trace.StartID("dnc-partition", t.ID)
	defer span.End()
	var counts [2]int64
	lw, err := e.Store.CreateWriter(taskFile(t.ID + "L"))
	if err != nil {
		return counts, err
	}
	rw, err := e.Store.CreateWriter(taskFile(t.ID + "R"))
	if err != nil {
		lw.Close()
		return counts, err
	}
	n, err := e.streamTask(t, func(rec *record.Record) error {
		if p.Route(t, payload, rec) == 0 {
			counts[0]++
			return lw.Write(*rec)
		}
		counts[1]++
		return rw.Write(*rec)
	})
	e.stats.RecordReads += n
	if err2 := lw.Close(); err == nil {
		err = err2
	}
	if err2 := rw.Close(); err == nil {
		err = err2
	}
	if err != nil {
		return counts, err
	}
	return counts, e.Store.Remove(taskFile(t.ID))
}

// encodeLeafMap frames a leaf-result map for transport: per entry a u32 key
// length, the key, a u64 value length, and the value.
func encodeLeafMap(m map[string][]byte) []byte {
	var out []byte
	var hdr [12]byte
	for k, v := range m {
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(k)))
		binary.LittleEndian.PutUint64(hdr[4:], uint64(len(v)))
		out = append(out, hdr[:]...)
		out = append(out, k...)
		out = append(out, v...)
	}
	return out
}

func decodeLeafMap(src []byte) (map[string][]byte, error) {
	m := make(map[string][]byte)
	for len(src) > 0 {
		if len(src) < 12 {
			return nil, fmt.Errorf("dnc: corrupt leaf map frame")
		}
		kl := int(binary.LittleEndian.Uint32(src[0:]))
		vl := int(binary.LittleEndian.Uint64(src[4:]))
		src = src[12:]
		if kl < 0 || vl < 0 || kl+vl > len(src) {
			return nil, fmt.Errorf("dnc: corrupt leaf map lengths %d/%d", kl, vl)
		}
		k := string(src[:kl])
		v := append([]byte(nil), src[kl:kl+vl]...)
		m[k] = v
		src = src[kl+vl:]
	}
	return m, nil
}
