package dnc

import (
	"fmt"

	"pclouds/internal/comm"
)

// runDataParallel solves tasks one after another using all processors: a
// streaming summary pass over each rank's share of the task, a global
// combine, a shared decision, and a local partition pass. No disk-resident
// data ever moves between ranks (Section 3.2).
func (e *Engine) runDataParallel(p Problem, queue []Task) error {
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		children, leaf, err := e.processTaskDP(p, t, e.C)
		if err != nil {
			return err
		}
		e.countTask(e.C, leaf)
		queue = append(queue, children...)
	}
	return nil
}

// processTaskDP runs one task's summarize→combine→decide→partition cycle on
// communicator c. It returns the non-empty child tasks.
func (e *Engine) processTaskDP(p Problem, t Task, c comm.Communicator) ([]Task, bool, error) {
	local, err := e.summarize(p, t)
	if err != nil {
		return nil, false, err
	}
	global, err := comm.AllReduceInt64(c, local, func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, false, err
	}
	e.stats.Collectives++
	dec, err := p.Decide(t, global)
	if err != nil {
		return nil, false, fmt.Errorf("dnc: deciding task %s: %w", t.ID, err)
	}
	if dec.Leaf {
		e.leaves[t.ID] = dec.Result
		e.Store.Remove(taskFile(t.ID))
		return nil, true, nil
	}
	localCounts, err := e.partitionTask(p, t, dec.Payload)
	if err != nil {
		return nil, false, err
	}
	globalCounts, err := comm.AllReduceInt64(c, localCounts[:], func(a, b int64) int64 { return a + b })
	if err != nil {
		return nil, false, err
	}
	e.stats.Collectives++
	var children []Task
	for i, suffix := range []string{"L", "R"} {
		child := Task{ID: t.ID + suffix, Depth: t.Depth + 1, N: globalCounts[i]}
		if globalCounts[i] == 0 {
			e.Store.Remove(taskFile(child.ID))
			continue
		}
		if e.MaxDepth > 0 && child.Depth >= e.MaxDepth {
			// Forced leaf at the depth cap: an empty result marks it.
			e.leaves[child.ID] = nil
			e.countTask(c, true)
			e.Store.Remove(taskFile(child.ID))
			continue
		}
		children = append(children, child)
	}
	return children, false, nil
}
