package dnc

import (
	"fmt"

	"pclouds/internal/comm"
	"pclouds/internal/ooc"
)

// runConcatenated solves all tasks of each tree level together (Section
// 3.3): the per-task summaries of a whole level are combined in a single
// batched all-reduce (saving p-proportional message startups), and all
// partitions of the level happen in one sweep.
//
// The memory pressure the paper attributes to concatenation — the available
// memory is shared by every task solved together — is modelled explicitly:
// when a level holds more tasks than buffer slots (Mem divided by the page
// size), each task's effective I/O buffer shrinks and the extra page
// operations are charged to the simulated clock as additional seeks.
func (e *Engine) runConcatenated(p Problem, root Task) error {
	level := []Task{root}
	for len(level) > 0 {
		e.chargeLevelPressure(level)

		// One summary pass per task, one batched all-reduce for the level.
		offsets := make([]int, len(level)+1)
		var batch []int64
		for i, t := range level {
			local, err := e.summarize(p, t)
			if err != nil {
				return err
			}
			offsets[i] = len(batch)
			batch = append(batch, local...)
		}
		offsets[len(level)] = len(batch)
		global, err := comm.AllReduceInt64(e.C, batch, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		e.stats.Collectives++

		var next []Task
		var childCounts []int64
		var pending []Task // internal tasks awaiting child-count combine
		for i, t := range level {
			dec, err := p.Decide(t, global[offsets[i]:offsets[i+1]])
			if err != nil {
				return fmt.Errorf("dnc: deciding task %s: %w", t.ID, err)
			}
			e.countTask(e.C, dec.Leaf)
			if dec.Leaf {
				e.leaves[t.ID] = dec.Result
				e.Store.Remove(taskFile(t.ID))
				continue
			}
			counts, err := e.partitionTask(p, t, dec.Payload)
			if err != nil {
				return err
			}
			childCounts = append(childCounts, counts[0], counts[1])
			pending = append(pending, t)
		}
		// One batched combine for every child count of the level.
		globalCounts, err := comm.AllReduceInt64(e.C, childCounts, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		e.stats.Collectives++
		for i, t := range pending {
			for j, suffix := range []string{"L", "R"} {
				n := globalCounts[2*i+j]
				child := Task{ID: t.ID + suffix, Depth: t.Depth + 1, N: n}
				if n == 0 {
					e.Store.Remove(taskFile(child.ID))
					continue
				}
				if e.MaxDepth > 0 && child.Depth >= e.MaxDepth {
					e.leaves[child.ID] = nil
					e.countTask(e.C, true)
					e.Store.Remove(taskFile(child.ID))
					continue
				}
				next = append(next, child)
			}
		}
		level = next
	}
	return nil
}

// chargeLevelPressure models the shared-memory penalty of concatenation:
// with B = Mem/PageSize buffer slots and T tasks in the level, each task's
// effective buffer shrinks by a factor T/B when T > B, multiplying the
// number of seeks for the level's streaming passes accordingly.
func (e *Engine) chargeLevelPressure(level []Task) {
	if e.Mem == nil || e.Mem.Limit() <= 0 {
		return
	}
	slots := e.Mem.Limit() / ooc.PageSize
	if slots < 1 {
		slots = 1
	}
	t := int64(len(level))
	if t <= slots {
		return
	}
	// Extra seeks: every page op of the level splits into t/slots smaller
	// ops. Estimate the level's local page ops from the task files.
	var localBytes int64
	for _, task := range level {
		if n, err := e.Store.Count(taskFile(task.ID)); err == nil {
			localBytes += n * int64(e.Store.Schema().RecordBytes())
		}
	}
	basePages := localBytes/ooc.PageSize + 1
	extraOps := basePages * (t/slots - 1)
	if extraOps <= 0 {
		return
	}
	// Two streaming passes (summary + partition) are affected.
	e.C.Clock().Advance(float64(2*extraOps) * e.Params.DiskSeek)
}
