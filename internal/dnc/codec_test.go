package dnc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSummaryFrameCodec(t *testing.T) {
	var buf []byte
	buf = appendSummaryFrame(buf, 0, []int64{1, 2, 3})
	buf = appendSummaryFrame(buf, 2, []int64{-5, 7})
	into := make([][]int64, 3)
	if err := addSummaryFrames(buf, into); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(into[0], []int64{1, 2, 3}) || into[1] != nil || !reflect.DeepEqual(into[2], []int64{-5, 7}) {
		t.Fatalf("roundtrip: %v", into)
	}
	// Accumulation across frames.
	if err := addSummaryFrames(buf, into); err != nil {
		t.Fatal(err)
	}
	if into[0][0] != 2 || into[2][1] != 14 {
		t.Fatalf("accumulate: %v", into)
	}
	// Length mismatch detected.
	var bad []byte
	bad = appendSummaryFrame(bad, 0, []int64{9})
	if err := addSummaryFrames(bad, into); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := addSummaryFrames([]byte{1, 2, 3}, into); err == nil {
		t.Fatal("truncated frame should fail")
	}
}

func TestSummaryFrameQuick(t *testing.T) {
	f := func(idx uint8, vals []int64) bool {
		n := int(idx%8) + 1
		i := int(idx) % n
		into := make([][]int64, n)
		if err := addSummaryFrames(appendSummaryFrame(nil, i, vals), into); err != nil {
			return false
		}
		if len(vals) == 0 {
			return into[i] == nil || len(into[i]) == 0
		}
		return reflect.DeepEqual(into[i], vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionFrameCodec(t *testing.T) {
	var buf []byte
	buf = appendDecisionFrame(buf, 1, Decision{Leaf: true, Result: []byte("leaf result")})
	buf = appendDecisionFrame(buf, 0, Decision{Leaf: false, Payload: []byte{9, 8}})
	into := make([]*Decision, 2)
	if err := decodeDecisionFrames(buf, into); err != nil {
		t.Fatal(err)
	}
	if into[1] == nil || !into[1].Leaf || string(into[1].Result) != "leaf result" {
		t.Fatalf("frame 1: %+v", into[1])
	}
	if into[0] == nil || into[0].Leaf || string(into[0].Payload) != string([]byte{9, 8}) {
		t.Fatalf("frame 0: %+v", into[0])
	}
	// First decision wins (duplicates ignored).
	buf2 := appendDecisionFrame(nil, 0, Decision{Leaf: true})
	if err := decodeDecisionFrames(buf2, into); err != nil {
		t.Fatal(err)
	}
	if into[0].Leaf {
		t.Fatal("duplicate decision overwrote the original")
	}
	if err := decodeDecisionFrames([]byte{1}, into); err == nil {
		t.Fatal("truncated frame should fail")
	}
}
