package dnc

import (
	"sort"

	"pclouds/internal/comm"
	"pclouds/internal/record"
)

// runMixed is the paper's recommended technique (Section 3.4, used by
// pCLOUDS): data parallelism for large tasks, and *delayed* task
// parallelism for small ones — tasks whose global size falls below SwitchN
// are set aside while the large tasks finish, then assigned each to a
// single processor (cost-based, longest-processing-time first), their data
// redistributed in one batch of messages, and solved locally with no
// further communication.
func (e *Engine) runMixed(p Problem, root Task) error {
	var small []Task
	queue := []Task{root}
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		if t.N < e.SwitchN && t.ID != root.ID {
			small = append(small, t)
			continue
		}
		children, leaf, err := e.processTaskDP(p, t, e.C)
		if err != nil {
			return err
		}
		e.countTask(e.C, leaf)
		queue = append(queue, children...)
	}
	return e.smallTaskPhase(p, small)
}

// smallTaskPhase assigns each deferred small task to one processor and
// ships its data there in a single all-to-all, then solves all local
// subtrees independently.
func (e *Engine) smallTaskPhase(p Problem, small []Task) error {
	if len(small) == 0 {
		return nil
	}
	owner := AssignTasks(small, e.C.Size())

	// Build per-destination payloads: every record of a small task goes to
	// the task's owner, prefixed by the task id so the owner can split the
	// stream back into files. Frame: u16 idlen, id, then the record.
	parts := make([][][]byte, e.C.Size())
	for i, t := range small {
		dst := owner[i]
		id := t.ID
		n, err := e.streamTask(t, func(rec *record.Record) error {
			frame := make([]byte, 0, 2+len(id)+e.Store.Schema().RecordBytes())
			frame = append(frame, byte(len(id)), byte(len(id)>>8))
			frame = append(frame, id...)
			frame = rec.Encode(frame)
			parts[dst] = append(parts[dst], frame)
			return nil
		})
		if err != nil {
			return err
		}
		e.stats.RecordReads += n
		if dst != e.C.Rank() {
			e.stats.Redistributed += n
		}
		e.Store.Remove(taskFile(t.ID))
	}
	flat := make([][]byte, e.C.Size())
	for d := range parts {
		var buf []byte
		for _, f := range parts[d] {
			buf = append(buf, f...)
		}
		flat[d] = buf
	}
	recv, err := comm.AllToAll(e.C, flat)
	if err != nil {
		return err
	}
	e.stats.Collectives++

	// Reassemble local task files from the received frames.
	writers := map[string]*taskSink{}
	rb := e.Store.Schema().RecordBytes()
	for _, raw := range recv {
		for len(raw) > 0 {
			idLen := int(raw[0]) | int(raw[1])<<8
			id := string(raw[2 : 2+idLen])
			raw = raw[2+idLen:]
			var rec record.Record
			if _, err := rec.Decode(e.Store.Schema(), raw[:rb]); err != nil {
				return err
			}
			raw = raw[rb:]
			sink, ok := writers[id]
			if !ok {
				sink = &taskSink{}
				writers[id] = sink
			}
			sink.recs = append(sink.recs, rec)
		}
	}
	for i, t := range small {
		if owner[i] != e.C.Rank() {
			continue
		}
		sink := writers[t.ID]
		var recs []record.Record
		if sink != nil {
			recs = sink.recs
		}
		if err := e.Store.WriteAll(taskFile(t.ID), recs); err != nil {
			return err
		}
		if err := e.solveLocal(p, t); err != nil {
			return err
		}
	}
	return nil
}

type taskSink struct {
	recs []record.Record
}

// AssignTasks maps each task to an owner rank with the longest-processing-
// time-first greedy heuristic: tasks sorted by descending size, each placed
// on the currently least-loaded rank. The assignment is deterministic
// (stable sort, lowest rank wins ties) so every rank computes the same map
// without communicating.
func AssignTasks(tasks []Task, p int) []int {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if tasks[idx[a]].N != tasks[idx[b]].N {
			return tasks[idx[a]].N > tasks[idx[b]].N
		}
		return tasks[idx[a]].ID < tasks[idx[b]].ID
	})
	load := make([]int64, p)
	owner := make([]int, len(tasks))
	for _, i := range idx {
		best := 0
		for r := 1; r < p; r++ {
			if load[r] < load[best] {
				best = r
			}
		}
		owner[i] = best
		load[best] += tasks[i].N
	}
	return owner
}
