package dnc

import (
	"fmt"

	"pclouds/internal/comm"
	"pclouds/internal/record"
)

// runTaskParallel is partitioned tree construction (Section 3.1): a task is
// processed cooperatively, then its two subtasks are assigned to two
// processor subgroups sized by subtask cost, the disk-resident data moves
// to its subgroup (compute-dependent parallel I/O: read at the source,
// communicate, write at the destination), and the subgroups recurse
// independently. A subgroup of one processor solves its whole subtree
// locally with no further communication.
func (e *Engine) runTaskParallel(p Problem, t Task, c comm.Communicator) error {
	if c.Size() == 1 {
		return e.solveLocal(p, t)
	}
	children, leaf, err := e.processTaskDP(p, t, c)
	if err != nil {
		return err
	}
	e.countTask(c, leaf)
	if leaf || len(children) == 0 {
		return nil
	}
	if len(children) == 1 {
		// One empty side: the whole group keeps the surviving child.
		return e.runTaskParallel(p, children[0], c)
	}
	left, right := children[0], children[1]

	// Size the subgroups by subtask cost (proportional to record counts).
	p2 := c.Size()
	nl := int(int64(p2) * left.N / (left.N + right.N))
	if nl < 1 {
		nl = 1
	}
	if nl > p2-1 {
		nl = p2 - 1
	}
	// Lower ranks take the left subtask.
	mine, other := left, right
	myGroupLo, myGroupHi := 0, nl
	otherLo, otherHi := nl, p2
	if c.Rank() >= nl {
		mine, other = right, left
		myGroupLo, myGroupHi = nl, p2
		otherLo, otherHi = 0, nl
	}

	// Redistribute: ship the local share of the other subtask's data to the
	// other group, spreading it round-robin for balance, and absorb what
	// the other group sends of our subtask.
	if err := e.redistribute(c, other, mine, otherLo, otherHi); err != nil {
		return err
	}

	groupRanks := make([]int, 0, myGroupHi-myGroupLo)
	for r := myGroupLo; r < myGroupHi; r++ {
		groupRanks = append(groupRanks, r)
	}
	sub, err := comm.NewSub(c, groupRanks)
	if err != nil {
		return err
	}
	return e.runTaskParallel(p, mine, sub)
}

// redistribute sends this rank's local records of task `away` to the ranks
// [lo,hi) of communicator c (round-robin by record index) and appends any
// records of task `keep` received from the other group to keep's local
// file. Both groups call it with mirrored arguments; it is one AllToAll.
func (e *Engine) redistribute(c comm.Communicator, away, keep Task, lo, hi int) error {
	p := c.Size()
	// Encode outgoing records per destination.
	bufs := make([][]record.Record, p)
	dests := hi - lo
	idx := 0
	n, err := e.streamTask(away, func(rec *record.Record) error {
		d := lo + idx%dests
		idx++
		bufs[d] = append(bufs[d], rec.Clone())
		return nil
	})
	if err != nil {
		return err
	}
	e.stats.RecordReads += n
	e.stats.Redistributed += n
	e.Store.Remove(taskFile(away.ID))

	parts := make([][]byte, p)
	for d := range parts {
		if len(bufs[d]) > 0 {
			parts[d] = record.EncodeAll(bufs[d])
		}
	}
	recv, err := comm.AllToAll(c, parts)
	if err != nil {
		return err
	}
	e.stats.Collectives++

	// Append incoming records of our kept task directly to its file.
	var incoming []record.Record
	for _, raw := range recv {
		if len(raw) == 0 {
			continue
		}
		recs, err := record.DecodeAll(e.Store.Schema(), raw)
		if err != nil {
			return err
		}
		incoming = append(incoming, recs...)
	}
	if len(incoming) == 0 {
		return nil
	}
	w, err := e.Store.AppendWriter(taskFile(keep.ID))
	if err != nil {
		return err
	}
	for _, rec := range incoming {
		if err := w.Write(rec); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}

// solveLocal builds a whole subtree on one rank: all the task's data is
// local, so global summaries equal local ones and no communication happens.
// Small subtrees whose data fits the memory budget run in-core.
func (e *Engine) solveLocal(p Problem, t Task) error {
	queue := []Task{t}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		localN, err := e.Store.Count(taskFile(cur.ID))
		if err != nil {
			return err
		}
		cur.N = localN
		sum, err := e.summarize(p, cur)
		if err != nil {
			return err
		}
		dec, err := p.Decide(cur, sum)
		if err != nil {
			return fmt.Errorf("dnc: deciding local task %s: %w", cur.ID, err)
		}
		e.stats.Tasks++
		if dec.Leaf {
			e.stats.LeafTasks++
			e.leaves[cur.ID] = dec.Result
			e.Store.Remove(taskFile(cur.ID))
			continue
		}
		counts, err := e.partitionTask(p, cur, dec.Payload)
		if err != nil {
			return err
		}
		for i, suffix := range []string{"L", "R"} {
			child := Task{ID: cur.ID + suffix, Depth: cur.Depth + 1, N: counts[i]}
			if counts[i] == 0 {
				e.Store.Remove(taskFile(child.ID))
				continue
			}
			if e.MaxDepth > 0 && child.Depth >= e.MaxDepth {
				e.leaves[child.ID] = nil
				e.stats.Tasks++
				e.stats.LeafTasks++
				e.Store.Remove(taskFile(child.ID))
				continue
			}
			queue = append(queue, child)
		}
	}
	return nil
}
