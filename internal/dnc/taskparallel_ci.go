package dnc

import (
	"encoding/binary"
	"fmt"

	"pclouds/internal/comm"
)

// runTaskParallelCI is task parallelism with *compute-independent* parallel
// I/O (Section 3.1's second alternative): subtasks are assigned to
// processors, but the disk-resident data keeps its initial random
// distribution — no records ever move. Every rank therefore holds a share
// of every task and performs the I/O for it; only the task's assigned
// owner performs the decision computation. Per tree level:
//
//  1. tasks are assigned round-robin to owner ranks (all ranks compute the
//     same assignment);
//  2. each rank streams its local share of every task, batching all local
//     summaries addressed to each owner into ONE all-to-all;
//  3. owners combine their tasks' summaries and decide;
//  4. one all-gather distributes the decisions, since every rank must
//     partition its local share of every task.
//
// Compared with data parallelism the summaries converge on single owners
// (no reduction tree) but different tasks' decisions happen concurrently;
// compared with compute-dependent task parallelism there is no
// redistribution I/O at all.
func (e *Engine) runTaskParallelCI(p Problem, root Task) error {
	level := []Task{root}
	for len(level) > 0 {
		pp := e.C.Size()
		rank := e.C.Rank()

		// 1. Deterministic ownership.
		owner := make([]int, len(level))
		for i := range level {
			owner[i] = i % pp
		}

		// 2. Local summaries, batched per owner: [u32 taskIdx][u32 n][n i64].
		parts := make([][]byte, pp)
		for i, t := range level {
			sum, err := e.summarize(p, t)
			if err != nil {
				return err
			}
			parts[owner[i]] = appendSummaryFrame(parts[owner[i]], i, sum)
		}
		recv, err := comm.AllToAll(e.C, parts)
		if err != nil {
			return err
		}
		e.stats.Collectives++

		// 3. Owners combine and decide their tasks.
		combined := make([][]int64, len(level))
		for _, raw := range recv {
			if err := addSummaryFrames(raw, combined); err != nil {
				return err
			}
		}
		decisions := make([]*Decision, len(level))
		var myDecisions []byte
		for i, t := range level {
			if owner[i] != rank {
				continue
			}
			if combined[i] == nil {
				combined[i] = make([]int64, p.SummaryLen(t))
			}
			dec, err := p.Decide(t, combined[i])
			if err != nil {
				return fmt.Errorf("dnc: deciding task %s: %w", t.ID, err)
			}
			decisions[i] = &dec
			myDecisions = appendDecisionFrame(myDecisions, i, dec)
		}

		// 4. Broadcast all decisions (one all-gather).
		gathered, err := comm.AllGather(e.C, myDecisions)
		if err != nil {
			return err
		}
		e.stats.Collectives++
		for _, raw := range gathered {
			if err := decodeDecisionFrames(raw, decisions); err != nil {
				return err
			}
		}

		// 5. Every rank partitions its local share of every internal task;
		// child sizes come from one batched combine.
		var next []Task
		var pending []Task
		var childCounts []int64
		for i, t := range level {
			dec := decisions[i]
			if dec == nil {
				return fmt.Errorf("dnc: missing decision for task %s", t.ID)
			}
			e.countTask(e.C, dec.Leaf)
			if dec.Leaf {
				e.leaves[t.ID] = dec.Result
				e.Store.Remove(taskFile(t.ID))
				continue
			}
			counts, err := e.partitionTask(p, t, dec.Payload)
			if err != nil {
				return err
			}
			childCounts = append(childCounts, counts[0], counts[1])
			pending = append(pending, t)
		}
		globalCounts, err := comm.AllReduceInt64(e.C, childCounts, func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		e.stats.Collectives++
		for i, t := range pending {
			for j, suffix := range []string{"L", "R"} {
				n := globalCounts[2*i+j]
				child := Task{ID: t.ID + suffix, Depth: t.Depth + 1, N: n}
				if n == 0 {
					e.Store.Remove(taskFile(child.ID))
					continue
				}
				if e.MaxDepth > 0 && child.Depth >= e.MaxDepth {
					e.leaves[child.ID] = nil
					e.countTask(e.C, true)
					e.Store.Remove(taskFile(child.ID))
					continue
				}
				next = append(next, child)
			}
		}
		level = next
	}
	return nil
}

func appendSummaryFrame(dst []byte, idx int, sum []int64) []byte {
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(idx))
	dst = append(dst, b8[:4]...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(sum)))
	dst = append(dst, b8[:4]...)
	for _, v := range sum {
		binary.LittleEndian.PutUint64(b8[:], uint64(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

func addSummaryFrames(src []byte, into [][]int64) error {
	for len(src) > 0 {
		if len(src) < 8 {
			return fmt.Errorf("dnc: truncated summary frame")
		}
		idx := int(binary.LittleEndian.Uint32(src))
		n := int(binary.LittleEndian.Uint32(src[4:]))
		src = src[8:]
		if idx < 0 || idx >= len(into) || len(src) < n*8 {
			return fmt.Errorf("dnc: corrupt summary frame (idx %d, n %d)", idx, n)
		}
		if into[idx] == nil {
			into[idx] = make([]int64, n)
		}
		if len(into[idx]) != n {
			return fmt.Errorf("dnc: summary length mismatch for task %d", idx)
		}
		for k := 0; k < n; k++ {
			into[idx][k] += int64(binary.LittleEndian.Uint64(src))
			src = src[8:]
		}
	}
	return nil
}

func appendDecisionFrame(dst []byte, idx int, dec Decision) []byte {
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], uint32(idx))
	dst = append(dst, b8[:4]...)
	if dec.Leaf {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(dec.Result)))
	dst = append(dst, b8[:4]...)
	dst = append(dst, dec.Result...)
	binary.LittleEndian.PutUint32(b8[:4], uint32(len(dec.Payload)))
	dst = append(dst, b8[:4]...)
	dst = append(dst, dec.Payload...)
	return dst
}

func decodeDecisionFrames(src []byte, into []*Decision) error {
	for len(src) > 0 {
		if len(src) < 13 {
			return fmt.Errorf("dnc: truncated decision frame")
		}
		idx := int(binary.LittleEndian.Uint32(src))
		leaf := src[4] != 0
		rn := int(binary.LittleEndian.Uint32(src[5:]))
		src = src[9:]
		if idx < 0 || idx >= len(into) || rn < 0 || rn > len(src) {
			return fmt.Errorf("dnc: corrupt decision frame")
		}
		result := append([]byte(nil), src[:rn]...)
		src = src[rn:]
		if len(src) < 4 {
			return fmt.Errorf("dnc: truncated decision payload length")
		}
		pn := int(binary.LittleEndian.Uint32(src))
		src = src[4:]
		if pn < 0 || pn > len(src) {
			return fmt.Errorf("dnc: corrupt decision payload")
		}
		payload := append([]byte(nil), src[:pn]...)
		src = src[pn:]
		if into[idx] == nil {
			into[idx] = &Decision{Leaf: leaf, Result: result, Payload: payload}
		}
	}
	return nil
}
