package dnc

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
)

// medianProblem is a divide-and-conquer test problem: records carry one
// numeric key in [0,1); a task's summary is a 64-bin histogram of keys, the
// decision splits at the median bin boundary, and leaves report their
// record count. The resulting leaf map is a balanced range partition whose
// counts must sum to the total — a deterministic problem all four
// strategies must solve identically.
type medianProblem struct {
	leafN int64
	bins  int
}

func (m *medianProblem) SummaryLen(Task) int { return m.bins }

func (m *medianProblem) Accumulate(t Task, sum []int64, rec *record.Record) {
	b := int(rec.Num[0] * float64(m.bins))
	if b < 0 {
		b = 0
	}
	if b >= m.bins {
		b = m.bins - 1
	}
	sum[b]++
}

func (m *medianProblem) Decide(t Task, global []int64) (Decision, error) {
	var n int64
	lo, hi := -1, -1
	for b, c := range global {
		n += c
		if c > 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
		}
	}
	result := make([]byte, 8)
	binary.LittleEndian.PutUint64(result, uint64(n))
	if n <= m.leafN || lo == hi {
		return Decision{Leaf: true, Result: result}, nil
	}
	// Median bin boundary: the first boundary with cumulative >= n/2 that
	// still leaves both sides non-empty.
	var cum int64
	for b := lo; b < hi; b++ {
		cum += global[b]
		if cum >= (n+1)/2 || b == hi-1 {
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(b))
			return Decision{Payload: payload}, nil
		}
	}
	return Decision{}, fmt.Errorf("median bin not found")
}

func (m *medianProblem) Route(t Task, payload []byte, rec *record.Record) int {
	b := int(binary.LittleEndian.Uint64(payload))
	k := int(rec.Num[0] * float64(m.bins))
	if k <= b {
		return 0
	}
	return 1
}

func keySchema() *record.Schema {
	return record.MustSchema([]record.Attribute{{Name: "k", Kind: record.Numeric}}, 2)
}

func keyRecords(n int, seed int64) []record.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]record.Record, n)
	for i := range out {
		out[i] = record.Record{Num: []float64{rng.Float64()}, Class: 0}
	}
	return out
}

// runStrategy executes the median problem on p ranks and returns rank 0's
// result.
func runStrategy(t *testing.T, recs []record.Record, p int, s Strategy, switchN int64) *Result {
	t.Helper()
	schema := keySchema()
	comms := comm.NewGroup(p, costmodel.Default())
	results := make([]*Result, p)
	errs := make([]error, p)
	done := make(chan struct{}, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			store := ooc.NewMemStore(schema, costmodel.Default(), comms[r].Clock())
			var local []record.Record
			for i := r; i < len(recs); i += p {
				local = append(local, recs[i])
			}
			if err := store.WriteAll("task-r", local); err != nil {
				errs[r] = err
				return
			}
			e := &Engine{
				C: comms[r], Store: store,
				Mem:     ooc.NewMemLimit(1 << 20),
				SwitchN: switchN,
				Params:  costmodel.Default(),
			}
			results[r], errs[r] = e.Run(&medianProblem{leafN: 40, bins: 64}, "r", s)
		}(r)
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("strategy %v rank %d: %v", s, r, err)
		}
	}
	return results[0]
}

func leafCounts(res *Result) map[string]int64 {
	out := make(map[string]int64)
	for id, blob := range res.Leaves {
		if len(blob) == 8 {
			out[id] = int64(binary.LittleEndian.Uint64(blob))
		}
	}
	return out
}

func TestAllStrategiesAgree(t *testing.T) {
	recs := keyRecords(2000, 11)
	ref := runStrategy(t, recs, 4, DataParallel, 0)
	refLeaves := leafCounts(ref)
	var refTotal int64
	for _, c := range refLeaves {
		refTotal += c
	}
	if refTotal != int64(len(recs)) {
		t.Fatalf("data-parallel leaves sum to %d, want %d", refTotal, len(recs))
	}
	if len(refLeaves) < 8 {
		t.Fatalf("tree too shallow: %d leaves", len(refLeaves))
	}
	for _, s := range []Strategy{Concatenated, TaskParallel, Mixed, TaskParallelCI} {
		got := leafCounts(runStrategy(t, recs, 4, s, 300))
		if !reflect.DeepEqual(refLeaves, got) {
			t.Errorf("strategy %v leaf map differs from data-parallel:\nref: %v\ngot: %v", s, refLeaves, got)
		}
	}
}

func TestStrategiesAcrossGroupSizes(t *testing.T) {
	recs := keyRecords(1200, 3)
	ref := leafCounts(runStrategy(t, recs, 1, DataParallel, 0))
	for _, p := range []int{2, 3, 4, 8} {
		for _, s := range []Strategy{DataParallel, Concatenated, TaskParallel, Mixed, TaskParallelCI} {
			got := leafCounts(runStrategy(t, recs, p, s, 200))
			if !reflect.DeepEqual(ref, got) {
				t.Errorf("p=%d strategy %v differs from sequential reference", p, s)
			}
		}
	}
}

func TestDataParallelMovesNoData(t *testing.T) {
	recs := keyRecords(1500, 7)
	res := runStrategy(t, recs, 4, DataParallel, 0)
	if res.Stats.Redistributed != 0 {
		t.Fatalf("data parallelism redistributed %d records", res.Stats.Redistributed)
	}
	resC := runStrategy(t, recs, 4, Concatenated, 0)
	if resC.Stats.Redistributed != 0 {
		t.Fatalf("concatenated redistributed %d records", resC.Stats.Redistributed)
	}
	resCI := runStrategy(t, recs, 4, TaskParallelCI, 0)
	if resCI.Stats.Redistributed != 0 {
		t.Fatalf("compute-independent task parallelism redistributed %d records", resCI.Stats.Redistributed)
	}
}

func TestTaskParallelMovesData(t *testing.T) {
	recs := keyRecords(1500, 7)
	res := runStrategy(t, recs, 4, TaskParallel, 0)
	if res.Stats.Redistributed == 0 {
		t.Fatal("task parallelism moved no data")
	}
}

func TestMixedDefersSmallTasks(t *testing.T) {
	recs := keyRecords(1500, 7)
	res := runStrategy(t, recs, 4, Mixed, 300)
	if res.Stats.Redistributed == 0 {
		t.Fatal("mixed strategy shipped no small-task data")
	}
	// Mixed should ship less data than pure task parallelism, which moves
	// large upper-level tasks too.
	tp := runStrategy(t, recs, 4, TaskParallel, 0)
	if res.Stats.Redistributed >= tp.Stats.Redistributed {
		t.Fatalf("mixed shipped %d records, task-parallel %d; expected mixed < task-parallel",
			res.Stats.Redistributed, tp.Stats.Redistributed)
	}
}

func TestConcatenatedSavesCollectives(t *testing.T) {
	recs := keyRecords(3000, 19)
	dp := runStrategy(t, recs, 4, DataParallel, 0)
	ct := runStrategy(t, recs, 4, Concatenated, 0)
	if ct.Stats.Collectives >= dp.Stats.Collectives {
		t.Fatalf("concatenated used %d collectives, data-parallel %d; expected fewer",
			ct.Stats.Collectives, dp.Stats.Collectives)
	}
}

func TestAssignTasksBalanced(t *testing.T) {
	tasks := []Task{
		{ID: "a", N: 100}, {ID: "b", N: 90}, {ID: "c", N: 50},
		{ID: "d", N: 40}, {ID: "e", N: 30}, {ID: "f", N: 10},
	}
	owner := AssignTasks(tasks, 2)
	load := map[int]int64{}
	for i, o := range owner {
		if o < 0 || o > 1 {
			t.Fatalf("owner %d out of range", o)
		}
		load[o] += tasks[i].N
	}
	// LPT on these sizes: {100,40,30} vs {90,50,10} => 170 vs 150.
	if load[0]+load[1] != 320 {
		t.Fatalf("loads %v", load)
	}
	diff := load[0] - load[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 40 {
		t.Fatalf("imbalanced LPT assignment: %v", load)
	}
	// Determinism.
	owner2 := AssignTasks(tasks, 2)
	if !reflect.DeepEqual(owner, owner2) {
		t.Fatal("assignment not deterministic")
	}
}

func TestLeafMapEncoding(t *testing.T) {
	m := map[string][]byte{"rLL": {1, 2, 3}, "rR": nil, "": {9}}
	got, err := decodeLeafMap(encodeLeafMap(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["rLL"]) != string([]byte{1, 2, 3}) || len(got["rR"]) != 0 {
		t.Fatalf("leaf map roundtrip: %v", got)
	}
	if _, err := decodeLeafMap([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt frame should fail")
	}
}

func TestMaxDepthCapsTree(t *testing.T) {
	recs := keyRecords(2000, 23)
	schema := keySchema()
	comms := comm.NewGroup(2, costmodel.Zero())
	results := make([]*Result, 2)
	errs := make([]error, 2)
	done := make(chan struct{}, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			store := ooc.NewMemStore(schema, costmodel.Zero(), comms[r].Clock())
			var local []record.Record
			for i := r; i < len(recs); i += 2 {
				local = append(local, recs[i])
			}
			store.WriteAll("task-r", local)
			e := &Engine{C: comms[r], Store: store, MaxDepth: 3, Params: costmodel.Default()}
			results[r], errs[r] = e.Run(&medianProblem{leafN: 1, bins: 64}, "r", DataParallel)
		}(r)
	}
	<-done
	<-done
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for id := range results[0].Leaves {
		if len(id) > 1+3 { // "r" + at most MaxDepth suffixes
			t.Fatalf("leaf %q deeper than the cap", id)
		}
	}
}

// kdProblem is a 2-D k-d-tree partitioner: the split dimension alternates
// with task depth, exercising depth-dependent Problem behaviour (summary
// contents change per task).
type kdProblem struct {
	leafN int64
	bins  int
}

func (m *kdProblem) dim(t Task) int { return t.Depth % 2 }

func (m *kdProblem) SummaryLen(Task) int { return m.bins }

func (m *kdProblem) Accumulate(t Task, sum []int64, rec *record.Record) {
	b := int(rec.Num[m.dim(t)] * float64(m.bins))
	if b < 0 {
		b = 0
	}
	if b >= m.bins {
		b = m.bins - 1
	}
	sum[b]++
}

func (m *kdProblem) Decide(t Task, global []int64) (Decision, error) {
	var n int64
	lo, hi := -1, -1
	for b, c := range global {
		n += c
		if c > 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
		}
	}
	result := make([]byte, 8)
	binary.LittleEndian.PutUint64(result, uint64(n))
	if n <= m.leafN || lo == hi {
		return Decision{Leaf: true, Result: result}, nil
	}
	var cum int64
	for b := lo; b < hi; b++ {
		cum += global[b]
		if cum >= (n+1)/2 || b == hi-1 {
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(b))
			return Decision{Payload: payload}, nil
		}
	}
	return Decision{}, fmt.Errorf("kd median bin not found")
}

func (m *kdProblem) Route(t Task, payload []byte, rec *record.Record) int {
	b := int(binary.LittleEndian.Uint64(payload))
	if int(rec.Num[m.dim(t)]*float64(m.bins)) <= b {
		return 0
	}
	return 1
}

// TestKDTreeAcrossStrategies: a depth-dependent problem (k-d tree over 2-D
// points) must still agree across every strategy and group size.
func TestKDTreeAcrossStrategies(t *testing.T) {
	schema := record.MustSchema([]record.Attribute{
		{Name: "x", Kind: record.Numeric},
		{Name: "y", Kind: record.Numeric},
	}, 2)
	rng := rand.New(rand.NewSource(17))
	recs := make([]record.Record, 1600)
	for i := range recs {
		recs[i] = record.Record{Num: []float64{rng.Float64(), rng.Float64()}, Class: 0}
	}
	run := func(p int, s Strategy) map[string]int64 {
		comms := comm.NewGroup(p, costmodel.Zero())
		results := make([]*Result, p)
		errs := make([]error, p)
		done := make(chan struct{}, p)
		for r := 0; r < p; r++ {
			go func(r int) {
				defer func() { done <- struct{}{} }()
				store := ooc.NewMemStore(schema, costmodel.Zero(), comms[r].Clock())
				var local []record.Record
				for i := r; i < len(recs); i += p {
					local = append(local, recs[i])
				}
				if err := store.WriteAll("task-kd", local); err != nil {
					errs[r] = err
					return
				}
				e := &Engine{C: comms[r], Store: store, Mem: ooc.NewMemLimit(1 << 20), SwitchN: 200, Params: costmodel.Default()}
				results[r], errs[r] = e.Run(&kdProblem{leafN: 50, bins: 64}, "kd", s)
			}(r)
		}
		for i := 0; i < p; i++ {
			<-done
		}
		for r, err := range errs {
			if err != nil {
				t.Fatalf("p=%d %v rank %d: %v", p, s, r, err)
			}
		}
		return leafCounts(results[0])
	}
	ref := run(1, DataParallel)
	var total int64
	for _, c := range ref {
		total += c
	}
	if total != int64(len(recs)) {
		t.Fatalf("kd leaves cover %d of %d", total, len(recs))
	}
	for _, p := range []int{2, 4} {
		for _, s := range []Strategy{DataParallel, Concatenated, TaskParallel, Mixed, TaskParallelCI} {
			if got := run(p, s); !reflect.DeepEqual(ref, got) {
				t.Errorf("kd tree differs: p=%d strategy %v", p, s)
			}
		}
	}
}
