// Package scalparc implements a parallel exact decision tree classifier in
// the style of ScalParC (Joshi, Karypis, Kumar — IPPS 1998), the "more
// scalable parallel implementation of SPRINT" the paper cites in Section 4.
// It is the parallel exact baseline pCLOUDS is positioned against.
//
// Layout: every numeric attribute list (value, class, rid) is globally
// sorted once at the root with a parallel sample sort and stays
// block-distributed in rank order; categorical lists keep the initial
// distribution. At each node:
//
//   - numeric split evaluation scans each rank's sorted block, using one
//     prefix-sum collective to obtain the class counts below the block and
//     an all-gather of block boundary values to avoid evaluating a value
//     that continues into the next rank's block;
//   - categorical evaluation all-reduces the count matrices;
//   - the winner is chosen with the repository's deterministic candidate
//     combine, so the tree is identical to sequential SPRINT's;
//   - partitioning uses ScalParC's *distributed* rid hash: the winning
//     attribute's scan sends (rid, side) to the rid's owner (rid mod p),
//     and every list then queries the owners for its entries' sides — two
//     all-to-all rounds per node, O(n/p) hash memory per rank instead of
//     SPRINT's O(n) replicated hash.
package scalparc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/gini"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

// Config mirrors the SPRINT/CLOUDS stopping rules.
type Config struct {
	MinNodeSize int64
	MaxDepth    int
}

func (c Config) withDefaults() Config {
	if c.MinNodeSize <= 0 {
		c.MinNodeSize = 2
	}
	return c
}

// Stats reports one rank's costs.
type Stats struct {
	Nodes, Leaves int
	// EntriesScanned counts local attribute-list entries touched.
	EntriesScanned int64
	// ListScans counts sequential scans of a local list (seek proxy for
	// the disk-based operation SPRINT/ScalParC describe).
	ListScans int64
	// HashUpdates and HashQueries count distributed-hash traffic items.
	HashUpdates, HashQueries int64
	// HashPeak is this rank's largest per-node hash table (O(n/p)).
	HashPeak int64
	// Comm is the communicator's counters after the build.
	Comm comm.Stats
}

type numEntry struct {
	v     float64
	class int32
	rid   int32
}

type catEntry struct {
	v     int32
	class int32
	rid   int32
}

// nodeLists is one rank's share of one tree node's attribute lists.
type nodeLists struct {
	num [][]numEntry // sorted blocks, global order = rank order
	cat [][]catEntry
}

type builder struct {
	cfg    Config
	c      comm.Communicator
	schema *record.Schema
	stats  Stats
}

// Build runs the parallel exact build on this rank. recs is the rank's
// share of the training data; rids must be globally unique across ranks
// (ridBase..ridBase+len(recs)). All ranks return the identical tree.
func Build(cfg Config, c comm.Communicator, schema *record.Schema, recs []record.Record, ridBase int32) (*tree.Tree, *Stats, error) {
	cfg = cfg.withDefaults()
	b := &builder{cfg: cfg, c: c, schema: schema}

	// Global size check.
	total, err := comm.AllReduceInt64(c, []int64{int64(len(recs))}, addI64)
	if err != nil {
		return nil, nil, err
	}
	if total[0] == 0 {
		return nil, nil, fmt.Errorf("scalparc: empty global training set")
	}

	// Root lists: numeric lists via parallel sample sort, categorical lists
	// in place.
	root := nodeLists{
		num: make([][]numEntry, schema.NumNumeric()),
		cat: make([][]catEntry, schema.NumCategorical()),
	}
	for j := range root.num {
		local := make([]numEntry, len(recs))
		for i, r := range recs {
			local[i] = numEntry{v: r.Num[j], class: r.Class, rid: ridBase + int32(i)}
		}
		sorted, err := parallelSortNumeric(c, local)
		if err != nil {
			return nil, nil, err
		}
		root.num[j] = sorted
	}
	for j := range root.cat {
		lst := make([]catEntry, len(recs))
		for i, r := range recs {
			lst[i] = catEntry{v: r.Cat[j], class: r.Class, rid: ridBase + int32(i)}
		}
		root.cat[j] = lst
	}

	rootNode, err := b.build(root, 0)
	if err != nil {
		return nil, nil, err
	}
	b.stats.Comm = c.Stats()
	st := b.stats
	return &tree.Tree{Schema: schema, Root: rootNode}, &st, nil
}

func addI64(a, b int64) int64 { return a + b }

// classCounts computes the node's global class counts from the first
// available list.
func (b *builder) classCounts(ls nodeLists) ([]int64, error) {
	local := make([]int64, b.schema.NumClasses)
	if len(ls.num) > 0 {
		for _, e := range ls.num[0] {
			local[e.class]++
		}
	} else if len(ls.cat) > 0 {
		for _, e := range ls.cat[0] {
			local[e.class]++
		}
	}
	return comm.AllReduceInt64(b.c, local, addI64)
}

func (b *builder) build(ls nodeLists, depth int) (*tree.Node, error) {
	counts, err := b.classCounts(ls)
	if err != nil {
		return nil, err
	}
	n := gini.Sum(counts)
	leaf := func() *tree.Node {
		nd := &tree.Node{ClassCounts: counts, N: n}
		nd.Class = nd.Majority()
		b.countNode(true)
		return nd
	}
	if b.shouldStop(counts, n, depth) {
		return leaf(), nil
	}
	cand, err := b.bestSplit(ls, counts, n)
	if err != nil {
		return nil, err
	}
	if !cand.Valid {
		return leaf(), nil
	}
	sp := cand.Splitter()
	left, right, nl, nr, err := b.partition(ls, sp)
	if err != nil {
		return nil, err
	}
	if nl == 0 || nr == 0 {
		return leaf(), nil
	}
	nd := &tree.Node{Splitter: sp, ClassCounts: counts, N: n}
	nd.Class = nd.Majority()
	b.countNode(false)
	if nd.Left, err = b.build(left, depth+1); err != nil {
		return nil, err
	}
	if nd.Right, err = b.build(right, depth+1); err != nil {
		return nil, err
	}
	return nd, nil
}

func (b *builder) countNode(leaf bool) {
	b.stats.Nodes++
	if leaf {
		b.stats.Leaves++
	}
}

func (b *builder) shouldStop(counts []int64, n int64, depth int) bool {
	if n < b.cfg.MinNodeSize {
		return true
	}
	if b.cfg.MaxDepth > 0 && depth >= b.cfg.MaxDepth {
		return true
	}
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	return nonzero <= 1
}

// bestSplit evaluates every attribute in parallel and combines the
// candidates deterministically.
func (b *builder) bestSplit(ls nodeLists, total []int64, nTotal int64) (clouds.Candidate, error) {
	myBest := clouds.Candidate{Valid: false}
	classes := b.schema.NumClasses

	for j, blk := range ls.num {
		attr := b.schema.NumericIndices()[j]
		b.stats.EntriesScanned += int64(len(blk))
		b.stats.ListScans++

		// Class counts below my block: exclusive prefix of block sums.
		blockSum := make([]int64, classes)
		for _, e := range blk {
			blockSum[e.class]++
		}
		inclusive, err := comm.PrefixSumInt64(b.c, blockSum)
		if err != nil {
			return clouds.Candidate{}, err
		}
		left := make([]int64, classes)
		var nLeft int64
		for k := 0; k < classes; k++ {
			left[k] = inclusive[k] - blockSum[k]
			nLeft += left[k]
		}

		// Block boundary values: a rank must not evaluate at its last value
		// if a later rank's block starts with the same value.
		info := encodeBlockInfo(blk)
		all, err := comm.AllGather(b.c, info)
		if err != nil {
			return clouds.Candidate{}, err
		}
		nextFirst := math.NaN()
		for r := b.c.Rank() + 1; r < b.c.Size(); r++ {
			has, first, _ := decodeBlockInfo(all[r])
			if has {
				nextFirst = first
				break
			}
		}

		right := make([]int64, classes)
		for i := 0; i < len(blk); i++ {
			left[blk[i].class]++
			nLeft++
			if i+1 < len(blk) && blk[i+1].v == blk[i].v {
				continue
			}
			if i+1 == len(blk) && !math.IsNaN(nextFirst) && nextFirst == blk[i].v {
				continue // value continues in a later block
			}
			if nLeft == nTotal {
				continue
			}
			for k := range right {
				right[k] = total[k] - left[k]
			}
			cand := clouds.Candidate{
				Valid: true, Gini: gini.SplitIndex(left, right),
				Attr: attr, Kind: tree.NumericSplit, Threshold: blk[i].v,
			}
			if cand.Better(myBest) {
				myBest = cand
			}
		}
	}

	for j, lst := range ls.cat {
		attr := b.schema.CategoricalIndices()[j]
		b.stats.EntriesScanned += int64(len(lst))
		b.stats.ListScans++
		cm := gini.NewCountMatrix(b.schema.Attrs[attr].Cardinality, classes)
		for _, e := range lst {
			cm.Add(e.v, e.class)
		}
		global, err := comm.AllReduceInt64(b.c, cm.Flatten(), addI64)
		if err != nil {
			return clouds.Candidate{}, err
		}
		gm := gini.UnflattenCountMatrix(global, cm.Cardinality(), cm.Classes())
		ss := gm.BestSubsetSplit()
		var nLeft int64
		for v, in := range ss.InLeft {
			if in {
				nLeft += gini.Sum(gm.Counts[v])
			}
		}
		if nLeft == 0 || nLeft == nTotal {
			continue
		}
		cand := clouds.Candidate{
			Valid: true, Gini: ss.Gini,
			Attr: attr, Kind: tree.CategoricalSplit, InLeft: ss.InLeft,
		}
		if cand.Better(myBest) {
			myBest = cand
		}
	}

	return combineCandidates(b.c, myBest)
}

func combineCandidates(c comm.Communicator, mine clouds.Candidate) (clouds.Candidate, error) {
	res, err := comm.AllReduceBytes(c, mine.Encode(), func(a, b []byte) ([]byte, error) {
		ca, err := clouds.DecodeCandidate(a)
		if err != nil {
			return nil, err
		}
		cb, err := clouds.DecodeCandidate(b)
		if err != nil {
			return nil, err
		}
		if cb.Better(ca) {
			return b, nil
		}
		return a, nil
	})
	if err != nil {
		return clouds.Candidate{}, err
	}
	return clouds.DecodeCandidate(res)
}

// encodeBlockInfo frames (hasEntries, firstValue, lastValue).
func encodeBlockInfo(blk []numEntry) []byte {
	out := make([]byte, 17)
	if len(blk) > 0 {
		out[0] = 1
		binary.LittleEndian.PutUint64(out[1:], math.Float64bits(blk[0].v))
		binary.LittleEndian.PutUint64(out[9:], math.Float64bits(blk[len(blk)-1].v))
	}
	return out
}

func decodeBlockInfo(src []byte) (has bool, first, last float64) {
	if len(src) != 17 || src[0] == 0 {
		return false, 0, 0
	}
	return true, math.Float64frombits(binary.LittleEndian.Uint64(src[1:])),
		math.Float64frombits(binary.LittleEndian.Uint64(src[9:]))
}

// partition implements ScalParC's distributed hash partitioning and returns
// the child lists with their global sizes.
func (b *builder) partition(ls nodeLists, sp *tree.Splitter) (nodeLists, nodeLists, int64, int64, error) {
	p := b.c.Size()

	// 1. The winning attribute's local entries determine (rid, side) pairs;
	// ship each to the rid's owner. Frame: per pair u32 rid, u8 side.
	updates := make([][]byte, p)
	appendPair := func(rid int32, side byte) {
		d := int(rid) % p
		var buf [5]byte
		binary.LittleEndian.PutUint32(buf[:4], uint32(rid))
		buf[4] = side
		updates[d] = append(updates[d], buf[:]...)
		b.stats.HashUpdates++
	}
	if sp.Kind == tree.NumericSplit {
		j := b.schema.NumericPos(sp.Attr)
		for _, e := range ls.num[j] {
			if e.v <= sp.Threshold {
				appendPair(e.rid, 0)
			} else {
				appendPair(e.rid, 1)
			}
		}
		b.stats.EntriesScanned += int64(len(ls.num[j]))
		b.stats.ListScans++
	} else {
		j := b.schema.CategoricalPos(sp.Attr)
		for _, e := range ls.cat[j] {
			if sp.InLeft[e.v] {
				appendPair(e.rid, 0)
			} else {
				appendPair(e.rid, 1)
			}
		}
		b.stats.EntriesScanned += int64(len(ls.cat[j]))
		b.stats.ListScans++
	}
	recvUpd, err := comm.AllToAll(b.c, updates)
	if err != nil {
		return nodeLists{}, nodeLists{}, 0, 0, err
	}
	hash := make(map[int32]byte)
	for _, raw := range recvUpd {
		for len(raw) >= 5 {
			rid := int32(binary.LittleEndian.Uint32(raw))
			hash[rid] = raw[4]
			raw = raw[5:]
		}
	}
	if h := int64(len(hash)); h > b.stats.HashPeak {
		b.stats.HashPeak = h
	}

	// 2. Every list queries the owners for its entries' sides. Collect the
	// distinct rids this rank needs, per owner.
	need := make([]map[int32]struct{}, p)
	for d := range need {
		need[d] = make(map[int32]struct{})
	}
	addNeed := func(rid int32) {
		need[int(rid)%p][rid] = struct{}{}
	}
	for j := range ls.num {
		for _, e := range ls.num[j] {
			addNeed(e.rid)
		}
	}
	for j := range ls.cat {
		for _, e := range ls.cat[j] {
			addNeed(e.rid)
		}
	}
	queries := make([][]byte, p)
	for d := range queries {
		rids := make([]int32, 0, len(need[d]))
		for rid := range need[d] {
			rids = append(rids, rid)
		}
		sort.Slice(rids, func(a, c int) bool { return rids[a] < rids[c] })
		buf := make([]byte, 4*len(rids))
		for i, rid := range rids {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(rid))
		}
		queries[d] = buf
		b.stats.HashQueries += int64(len(rids))
	}
	recvQ, err := comm.AllToAll(b.c, queries)
	if err != nil {
		return nodeLists{}, nodeLists{}, 0, 0, err
	}
	// Answer: per queried rid one byte side, in query order.
	answers := make([][]byte, p)
	for src, raw := range recvQ {
		out := make([]byte, 0, len(raw)/4)
		for len(raw) >= 4 {
			rid := int32(binary.LittleEndian.Uint32(raw))
			side, ok := hash[rid]
			if !ok {
				return nodeLists{}, nodeLists{}, 0, 0, fmt.Errorf("scalparc: rid %d missing from hash", rid)
			}
			out = append(out, side)
			raw = raw[4:]
		}
		answers[src] = out
	}
	recvA, err := comm.AllToAll(b.c, answers)
	if err != nil {
		return nodeLists{}, nodeLists{}, 0, 0, err
	}
	// Reassemble rid -> side for the rids this rank asked about.
	side := make(map[int32]byte)
	for d := 0; d < p; d++ {
		raw := queries[d]
		ans := recvA[d]
		i := 0
		for len(raw) >= 4 {
			rid := int32(binary.LittleEndian.Uint32(raw))
			if i >= len(ans) {
				return nodeLists{}, nodeLists{}, 0, 0, fmt.Errorf("scalparc: short answer from rank %d", d)
			}
			side[rid] = ans[i]
			i++
			raw = raw[4:]
		}
	}

	// 3. Split every local list by the retrieved sides (order preserved).
	left := nodeLists{num: make([][]numEntry, len(ls.num)), cat: make([][]catEntry, len(ls.cat))}
	right := nodeLists{num: make([][]numEntry, len(ls.num)), cat: make([][]catEntry, len(ls.cat))}
	for j, blk := range ls.num {
		b.stats.EntriesScanned += int64(len(blk))
		b.stats.ListScans++
		for _, e := range blk {
			if side[e.rid] == 0 {
				left.num[j] = append(left.num[j], e)
			} else {
				right.num[j] = append(right.num[j], e)
			}
		}
	}
	for j, lst := range ls.cat {
		b.stats.EntriesScanned += int64(len(lst))
		b.stats.ListScans++
		for _, e := range lst {
			if side[e.rid] == 0 {
				left.cat[j] = append(left.cat[j], e)
			} else {
				right.cat[j] = append(right.cat[j], e)
			}
		}
	}

	// 4. Global child sizes: every rid is owned by exactly one hash owner,
	// so summing per-owner side counts gives the exact partition sizes.
	var ownedLeft, ownedRight int64
	for _, s := range hash {
		if s == 0 {
			ownedLeft++
		} else {
			ownedRight++
		}
	}
	sizes, err := comm.AllReduceInt64(b.c, []int64{ownedLeft, ownedRight}, addI64)
	if err != nil {
		return nodeLists{}, nodeLists{}, 0, 0, err
	}
	return left, right, sizes[0], sizes[1], nil
}
