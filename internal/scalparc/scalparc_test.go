package scalparc

import (
	"math/rand"
	"sort"
	"testing"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/record"
	"pclouds/internal/sprint"
	"pclouds/internal/tree"
)

func genData(t *testing.T, n, fn int, seed int64) *record.Dataset {
	t.Helper()
	g, err := datagen.New(datagen.Config{Function: fn, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g.Generate(n)
}

// buildParallel runs the ScalParC build on p simulated ranks with the data
// dealt round-robin and returns rank 0's tree and all stats.
func buildParallel(t *testing.T, cfg Config, data *record.Dataset, p int) (*tree.Tree, []*Stats) {
	t.Helper()
	comms := comm.NewGroup(p, costmodel.Zero())
	trees := make([]*tree.Tree, p)
	stats := make([]*Stats, p)
	errs := make([]error, p)
	done := make(chan struct{}, p)
	// Deal records round-robin with globally unique, contiguous-per-rank
	// rids: rank r gets rids [r*ceil(n/p), ...).
	perRank := make([][]record.Record, p)
	for i, rec := range data.Records {
		perRank[i%p] = append(perRank[i%p], rec)
	}
	base := make([]int32, p)
	var acc int32
	for r := 0; r < p; r++ {
		base[r] = acc
		acc += int32(len(perRank[r]))
	}
	for r := 0; r < p; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			trees[r], stats[r], errs[r] = Build(cfg, comms[r], data.Schema, perRank[r], base[r])
		}(r)
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < p; r++ {
		if !tree.Equal(trees[0], trees[r]) {
			t.Fatalf("rank %d built a different tree", r)
		}
	}
	return trees[0], stats
}

// TestMatchesSequentialSPRINT: the parallel exact build must produce the
// identical tree to sequential SPRINT for any processor count.
func TestMatchesSequentialSPRINT(t *testing.T) {
	for _, fn := range []int{1, 2, 7} {
		data := genData(t, 1200, fn, int64(fn*13))
		seq, _, err := sprint.Build(sprint.Config{MinNodeSize: 2, MaxDepth: 8}, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{1, 2, 3, 4, 8} {
			par, _ := buildParallel(t, Config{MinNodeSize: 2, MaxDepth: 8}, data, p)
			if !tree.Equal(seq, par) {
				t.Errorf("function %d p=%d: ScalParC differs from sequential SPRINT", fn, p)
			}
		}
	}
}

func TestAccuracy(t *testing.T) {
	train := genData(t, 3000, 2, 1)
	test := genData(t, 1500, 2, 2)
	tr, _ := buildParallel(t, Config{MaxDepth: 12}, train, 4)
	if acc := metrics.Accuracy(tr, test); acc < 0.97 {
		t.Fatalf("accuracy %.4f", acc)
	}
}

func TestDistributedHashBounded(t *testing.T) {
	// ScalParC's point: each rank's hash peak is ~n/p, not n.
	data := genData(t, 4000, 2, 3)
	const p = 4
	_, stats := buildParallel(t, Config{MaxDepth: 10}, data, p)
	bound := int64(data.Len())/p + int64(data.Len())/(p*4) + 16
	for r, s := range stats {
		if s.HashPeak == 0 {
			t.Fatalf("rank %d: no hash recorded", r)
		}
		if s.HashPeak > bound {
			t.Fatalf("rank %d: hash peak %d exceeds ~n/p bound %d", r, s.HashPeak, bound)
		}
	}
}

func TestHashTrafficRecorded(t *testing.T) {
	data := genData(t, 1500, 2, 5)
	_, stats := buildParallel(t, Config{MaxDepth: 8}, data, 4)
	var upd, q int64
	for _, s := range stats {
		upd += s.HashUpdates
		q += s.HashQueries
	}
	if upd == 0 || q == 0 {
		t.Fatalf("hash traffic not recorded: %d updates, %d queries", upd, q)
	}
	// Every split queries at least as many rids as it updates (all f lists
	// query; only the winner updates).
	if q < upd {
		t.Fatalf("queries %d < updates %d", q, upd)
	}
}

func TestParallelSortNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []int{1, 2, 3, 4, 8} {
		const n = 500
		all := make([]numEntry, n)
		for i := range all {
			all[i] = numEntry{v: float64(rng.Intn(40)), class: int32(rng.Intn(2)), rid: int32(i)}
		}
		comms := comm.NewGroup(p, costmodel.Zero())
		blocks := make([][]numEntry, p)
		errs := make([]error, p)
		done := make(chan struct{}, p)
		for r := 0; r < p; r++ {
			go func(r int) {
				defer func() { done <- struct{}{} }()
				var local []numEntry
				for i := r; i < n; i += p {
					local = append(local, all[i])
				}
				blocks[r], errs[r] = parallelSortNumeric(comms[r], local)
			}(r)
		}
		for i := 0; i < p; i++ {
			<-done
		}
		for r, err := range errs {
			if err != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, err)
			}
		}
		// Concatenation must be the global sort of all entries.
		var got []numEntry
		for _, blk := range blocks {
			got = append(got, blk...)
		}
		if len(got) != n {
			t.Fatalf("p=%d: %d entries after sort, want %d", p, len(got), n)
		}
		want := append([]numEntry(nil), all...)
		sort.Slice(want, func(i, j int) bool {
			if want[i].v != want[j].v {
				return want[i].v < want[j].v
			}
			return want[i].rid < want[j].rid
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: sort mismatch at %d: %+v vs %+v", p, i, got[i], want[i])
			}
		}
	}
}

func TestEntryCodec(t *testing.T) {
	lst := []numEntry{{v: 1.5, class: 1, rid: 42}, {v: -3, class: 0, rid: 7}}
	got, err := decodeEntries(encodeEntries(lst))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != lst[0] || got[1] != lst[1] {
		t.Fatalf("roundtrip: %+v", got)
	}
	if _, err := decodeEntries([]byte{1, 2, 3}); err == nil {
		t.Fatal("misaligned payload should fail")
	}
}

func TestEmptyGlobalData(t *testing.T) {
	comms := comm.NewGroup(2, costmodel.Zero())
	errs := make([]error, 2)
	done := make(chan struct{}, 2)
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			_, _, errs[r] = Build(Config{}, comms[r], datagen.Schema(), nil, 0)
		}(r)
	}
	<-done
	<-done
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: empty data should error", r)
		}
	}
}
