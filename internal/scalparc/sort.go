package scalparc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pclouds/internal/comm"
)

// parallelSortNumeric globally sorts one attribute list by (value, rid)
// with a parallel sample sort: local sort, splitter selection from an
// all-gathered sample, a personalised exchange by splitter range, and a
// final local sort. Afterwards the concatenation of the ranks' blocks in
// rank order is the globally sorted list. Blocks may be uneven; the split
// evaluation handles ragged and empty blocks.
func parallelSortNumeric(c comm.Communicator, local []numEntry) ([]numEntry, error) {
	p := c.Size()
	less := func(a, b numEntry) bool {
		if a.v != b.v {
			return a.v < b.v
		}
		return a.rid < b.rid
	}
	sort.Slice(local, func(i, j int) bool { return less(local[i], local[j]) })
	if p == 1 {
		return local, nil
	}

	// Sample p entries evenly from the sorted local list.
	var sample []numEntry
	if len(local) > 0 {
		for k := 0; k < p; k++ {
			sample = append(sample, local[k*len(local)/p])
		}
	}
	gathered, err := comm.AllGather(c, encodeEntries(sample))
	if err != nil {
		return nil, err
	}
	var all []numEntry
	for _, raw := range gathered {
		lst, err := decodeEntries(raw)
		if err != nil {
			return nil, err
		}
		all = append(all, lst...)
	}
	sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })

	// p-1 splitters at even quantiles of the sample; every rank computes
	// the identical set.
	splitters := make([]numEntry, 0, p-1)
	for k := 1; k < p; k++ {
		if len(all) == 0 {
			break
		}
		idx := k * len(all) / p
		if idx >= len(all) {
			idx = len(all) - 1
		}
		splitters = append(splitters, all[idx])
	}

	// Route each local entry to the bucket whose splitter range covers it:
	// bucket i holds entries e with splitter[i-1] < e <= splitter[i].
	buckets := make([][]numEntry, p)
	for _, e := range local {
		dst := sort.Search(len(splitters), func(i int) bool { return !less(splitters[i], e) })
		buckets[dst] = append(buckets[dst], e)
	}
	parts := make([][]byte, p)
	for d := range parts {
		parts[d] = encodeEntries(buckets[d])
	}
	recv, err := comm.AllToAll(c, parts)
	if err != nil {
		return nil, err
	}
	var out []numEntry
	for _, raw := range recv {
		lst, err := decodeEntries(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, lst...)
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out, nil
}

func encodeEntries(lst []numEntry) []byte {
	out := make([]byte, 16*len(lst))
	for i, e := range lst {
		binary.LittleEndian.PutUint64(out[16*i:], math.Float64bits(e.v))
		binary.LittleEndian.PutUint32(out[16*i+8:], uint32(e.class))
		binary.LittleEndian.PutUint32(out[16*i+12:], uint32(e.rid))
	}
	return out
}

func decodeEntries(src []byte) ([]numEntry, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("scalparc: entry payload length %d not a multiple of 16", len(src))
	}
	out := make([]numEntry, len(src)/16)
	for i := range out {
		out[i] = numEntry{
			v:     math.Float64frombits(binary.LittleEndian.Uint64(src[16*i:])),
			class: int32(binary.LittleEndian.Uint32(src[16*i+8:])),
			rid:   int32(binary.LittleEndian.Uint32(src[16*i+12:])),
		}
	}
	return out, nil
}
