// Package costmodel implements the paper's machine model: a coarse-grained
// shared-nothing parallel machine with a cut-through routed hypercube
// interconnect (Section 2, Table 1) and one private disk per processor.
//
// Sending a message of m bytes between two nodes costs ts + m·tw, where ts
// is the handshaking (startup) cost and tw the inverse bandwidth. Disk
// transfers cost a per-operation seek plus a per-byte charge. Computation is
// charged per record touch and per comparison.
//
// The model drives *simulated* per-rank clocks: every rank owns a Clock that
// advances with its local compute and I/O, and message receipt aligns the
// receiver's clock with the sender's send-completion time. The simulated
// makespan (max over ranks) reproduces the shape of the paper's
// speedup/sizeup/scaleup figures on a single host, where wall-clock timing
// of goroutines cannot exhibit 16-node distributed-memory behaviour.
package costmodel

import "fmt"

// Params holds the calibrated machine constants. All times are in seconds.
type Params struct {
	// Ts is the message startup (handshake) cost per message.
	Ts float64
	// Tw is the per-byte network transfer cost (inverse bandwidth).
	Tw float64
	// DiskSeek is the fixed cost per disk operation (seek + request setup).
	DiskSeek float64
	// DiskByte is the per-byte disk transfer cost.
	DiskByte float64
	// CPURecord is the compute cost of touching one record once (evaluating
	// a predicate, updating a frequency vector, and so on).
	CPURecord float64
	// CPUCompare is the compute cost of one comparison (sorting).
	CPUCompare float64
}

// Default returns constants loosely calibrated to the paper's era (IBM-SP2
// class nodes: ~40 µs message startup, ~35 MB/s network, ~10 ms seeks,
// ~5 MB/s per-node disk bandwidth, ~0.5 µs per record operation).
func Default() Params {
	return Params{
		Ts:         40e-6,
		Tw:         1.0 / 35e6,
		DiskSeek:   10e-3,
		DiskByte:   1.0 / 5e6,
		CPURecord:  0.5e-6,
		CPUCompare: 0.05e-6,
	}
}

// Zero returns an all-zero parameter set (disables simulated accounting).
func Zero() Params { return Params{} }

// MessageCost returns the point-to-point cost of an m-byte message.
func (p Params) MessageCost(m int) float64 { return p.Ts + float64(m)*p.Tw }

// DiskCost returns the cost of one disk operation transferring m bytes.
func (p Params) DiskCost(m int) float64 { return p.DiskSeek + float64(m)*p.DiskByte }

// Clock is a per-rank simulated clock. Each rank goroutine owns its clock
// exclusively; cross-rank synchronisation happens via message timestamps, so
// no locking is needed.
type Clock struct {
	t float64
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by d seconds (negative d is ignored).
func (c *Clock) Advance(d float64) {
	if c == nil || d <= 0 {
		return
	}
	c.t += d
}

// AlignTo moves the clock forward to time t if t is later.
func (c *Clock) AlignTo(t float64) {
	if c == nil {
		return
	}
	if t > c.t {
		c.t = t
	}
}

// Time returns the current simulated time.
func (c *Clock) Time() float64 {
	if c == nil {
		return 0
	}
	return c.t
}

// Reset sets the clock back to zero.
func (c *Clock) Reset() {
	if c != nil {
		c.t = 0
	}
}

// String formats the clock time.
func (c *Clock) String() string { return fmt.Sprintf("%.6fs", c.Time()) }

// Table1 gives the paper's Table 1 closed forms for the simulated cost of
// each collective primitive on a p-processor cut-through hypercube with
// m-byte per-rank payloads. These are the reference values the Table 1
// experiment checks the measured simulated costs against.
type Table1 struct{ P Params }

// Log2Ceil returns ceil(log2(p)) with Log2Ceil(1) == 0.
func Log2Ceil(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	return l
}

// AllToAllBroadcast: O(ts·log p + tw·m·(p-1)).
func (t Table1) AllToAllBroadcast(p, m int) float64 {
	return t.P.Ts*float64(Log2Ceil(p)) + t.P.Tw*float64(m)*float64(p-1)
}

// Gather: O(ts·log p + tw·m·p).
func (t Table1) Gather(p, m int) float64 {
	return t.P.Ts*float64(Log2Ceil(p)) + t.P.Tw*float64(m)*float64(p)
}

// GlobalCombine (all-reduce): O(ts·log p + tw·m).
func (t Table1) GlobalCombine(p, m int) float64 {
	return (t.P.Ts + t.P.Tw*float64(m)) * float64(Log2Ceil(p))
}

// PrefixSum: O(ts·log p + tw·m).
func (t Table1) PrefixSum(p, m int) float64 {
	return (t.P.Ts + t.P.Tw*float64(m)) * float64(Log2Ceil(p))
}
