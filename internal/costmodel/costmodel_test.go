package costmodel

import (
	"testing"
)

func TestClockBasics(t *testing.T) {
	c := NewClock()
	if c.Time() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if c.Time() != 1.5 {
		t.Fatalf("time %v", c.Time())
	}
	c.AlignTo(1.0) // backwards: ignored
	if c.Time() != 1.5 {
		t.Fatal("AlignTo moved backwards")
	}
	c.AlignTo(2.0)
	if c.Time() != 2.0 {
		t.Fatal("AlignTo did not move forward")
	}
	c.Reset()
	if c.Time() != 0 {
		t.Fatal("Reset broken")
	}
}

func TestNilClockSafe(t *testing.T) {
	var c *Clock
	c.Advance(1)
	c.AlignTo(2)
	c.Reset()
	if c.Time() != 0 {
		t.Fatal("nil clock should read zero")
	}
}

func TestCostFormulas(t *testing.T) {
	p := Params{Ts: 2, Tw: 0.5, DiskSeek: 10, DiskByte: 0.25}
	if got := p.MessageCost(100); got != 2+50 {
		t.Fatalf("message cost %v", got)
	}
	if got := p.DiskCost(100); got != 10+25 {
		t.Fatalf("disk cost %v", got)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5}
	for p, want := range cases {
		if got := Log2Ceil(p); got != want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestTable1Forms(t *testing.T) {
	tb := Table1{P: Params{Ts: 1, Tw: 1}}
	// All-to-all broadcast: ts·lg p + tw·m·(p-1).
	if got := tb.AllToAllBroadcast(8, 10); got != 3+10*7 {
		t.Fatalf("a2a %v", got)
	}
	// Gather: ts·lg p + tw·m·p.
	if got := tb.Gather(8, 10); got != 3+10*8 {
		t.Fatalf("gather %v", got)
	}
	// Global combine: (ts+tw·m)·lg p.
	if got := tb.GlobalCombine(8, 10); got != (1+10)*3 {
		t.Fatalf("combine %v", got)
	}
	if got := tb.PrefixSum(4, 5); got != (1+5)*2 {
		t.Fatalf("scan %v", got)
	}
}

func TestTable1Monotone(t *testing.T) {
	tb := Table1{P: Default()}
	for _, m := range []int{1, 100, 10000} {
		for p := 2; p <= 16; p *= 2 {
			if !(tb.AllToAllBroadcast(p*2, m) > tb.AllToAllBroadcast(p, m)) {
				t.Fatalf("a2a not monotone in p at p=%d m=%d", p, m)
			}
			if !(tb.Gather(p, m*2) > tb.Gather(p, m)) {
				t.Fatalf("gather not monotone in m at p=%d m=%d", p, m)
			}
		}
	}
}

func TestDefaultParamsSane(t *testing.T) {
	p := Default()
	if p.Ts <= 0 || p.Tw <= 0 || p.DiskSeek <= 0 || p.DiskByte <= 0 || p.CPURecord <= 0 {
		t.Fatalf("default params have non-positive entries: %+v", p)
	}
	// Era sanity: a seek costs more than a message startup; per-byte disk is
	// slower than network.
	if p.DiskSeek < p.Ts {
		t.Fatal("seek should dominate message startup")
	}
	if p.DiskByte < p.Tw {
		t.Fatal("disk bandwidth should be below network bandwidth")
	}
}
