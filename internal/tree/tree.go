// Package tree defines the binary decision tree produced by CLOUDS and
// pCLOUDS: splitter tests on numeric or categorical attributes, leaf class
// statistics, classification, traversal, and a compact binary encoding used
// to ship subtrees between processors.
package tree

import (
	"fmt"
	"io"
	"strings"

	"pclouds/internal/record"
)

// SplitKind distinguishes numeric threshold tests from categorical subset
// tests.
type SplitKind int

const (
	// NumericSplit sends a record left iff value <= Threshold.
	NumericSplit SplitKind = iota
	// CategoricalSplit sends a record left iff InLeft[value].
	CategoricalSplit
)

// Splitter is the test stored at an internal node.
type Splitter struct {
	Kind SplitKind
	// Attr is the attribute position in the schema.
	Attr int
	// Threshold applies to numeric splits: left iff value <= Threshold.
	Threshold float64
	// InLeft applies to categorical splits: left iff InLeft[value].
	InLeft []bool
	// Gini is the weighted gini achieved by this split (diagnostic).
	Gini float64
}

// GoesLeft evaluates the test on record r under schema s.
//
// Records that do not match the schema — a missing attribute slot or a
// categorical value outside the trained cardinality (an "unseen category"
// arriving at serving time) — are routed deterministically to the right
// (the no-branch) instead of panicking. Training-time records are always
// validated and in range, so this guard never changes a build.
func (sp *Splitter) GoesLeft(s *record.Schema, r record.Record) bool {
	if sp.Kind == NumericSplit {
		j := s.NumericPos(sp.Attr)
		if j < 0 || j >= len(r.Num) {
			return false
		}
		return r.Num[j] <= sp.Threshold
	}
	j := s.CategoricalPos(sp.Attr)
	if j < 0 || j >= len(r.Cat) {
		return false
	}
	v := r.Cat[j]
	if v < 0 || int(v) >= len(sp.InLeft) {
		return false
	}
	return sp.InLeft[v]
}

// String renders the test.
func (sp *Splitter) String() string {
	if sp.Kind == NumericSplit {
		return fmt.Sprintf("attr[%d] <= %g", sp.Attr, sp.Threshold)
	}
	vals := make([]string, 0, len(sp.InLeft))
	for v, in := range sp.InLeft {
		if in {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
	}
	return fmt.Sprintf("attr[%d] in {%s}", sp.Attr, strings.Join(vals, ","))
}

// Node is one tree node. A node with Splitter == nil is a leaf.
type Node struct {
	Splitter    *Splitter
	Left, Right *Node
	// ClassCounts is the class-frequency vector of the training records that
	// reached this node.
	ClassCounts []int64
	// N is the number of training records at the node.
	N int64
	// Class is the majority class at the node (leaf prediction).
	Class int32
}

// IsLeaf reports whether the node has no splitter.
func (n *Node) IsLeaf() bool { return n.Splitter == nil }

// Majority recomputes Class from ClassCounts (lowest index wins ties).
func (n *Node) Majority() int32 {
	best, bestC := int64(-1), int32(0)
	for c, v := range n.ClassCounts {
		if v > best {
			best, bestC = v, int32(c)
		}
	}
	return bestC
}

// Tree is a complete classifier.
type Tree struct {
	Schema *record.Schema
	Root   *Node
}

// Classify routes record r to a leaf and returns its majority class.
func (t *Tree) Classify(r record.Record) int32 {
	n := t.Root
	for !n.IsLeaf() {
		if n.Splitter.GoesLeft(t.Schema, r) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n.Class
}

// Leaf returns the leaf node record r is routed to.
func (t *Tree) Leaf(r record.Record) *Node {
	n := t.Root
	for !n.IsLeaf() {
		if n.Splitter.GoesLeft(t.Schema, r) {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Walk visits every node in pre-order.
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		if n == nil {
			return
		}
		fn(n, d)
		rec(n.Left, d+1)
		rec(n.Right, d+1)
	}
	rec(t.Root, 0)
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int {
	n := 0
	t.Walk(func(*Node, int) { n++ })
	return n
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int {
	n := 0
	t.Walk(func(nd *Node, _ int) {
		if nd.IsLeaf() {
			n++
		}
	})
	return n
}

// Depth returns the maximum depth (root = 0). An empty tree has depth -1.
func (t *Tree) Depth() int {
	max := -1
	t.Walk(func(_ *Node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// Dump writes an indented rendering of the tree to w.
func (t *Tree) Dump(w io.Writer) {
	t.Walk(func(n *Node, d int) {
		indent := strings.Repeat("  ", d)
		if n.IsLeaf() {
			fmt.Fprintf(w, "%sleaf class=%d n=%d counts=%v\n", indent, n.Class, n.N, n.ClassCounts)
		} else {
			fmt.Fprintf(w, "%s%s (n=%d gini=%.4f)\n", indent, n.Splitter, n.N, n.Splitter.Gini)
		}
	})
}

// String renders the tree via Dump.
func (t *Tree) String() string {
	var b strings.Builder
	t.Dump(&b)
	return b.String()
}

// Equal reports whether two trees have identical structure, splitters
// (exact threshold/subset equality), and leaf classes. Used by the
// determinism tests comparing pCLOUDS against sequential CLOUDS.
func Equal(a, b *Tree) bool {
	var eq func(x, y *Node) bool
	eq = func(x, y *Node) bool {
		if (x == nil) != (y == nil) {
			return false
		}
		if x == nil {
			return true
		}
		if x.IsLeaf() != y.IsLeaf() {
			return false
		}
		if x.N != y.N {
			return false
		}
		if x.IsLeaf() {
			return x.Class == y.Class
		}
		sx, sy := x.Splitter, y.Splitter
		if sx.Kind != sy.Kind || sx.Attr != sy.Attr {
			return false
		}
		if sx.Kind == NumericSplit {
			if sx.Threshold != sy.Threshold {
				return false
			}
		} else {
			if len(sx.InLeft) != len(sy.InLeft) {
				return false
			}
			for i := range sx.InLeft {
				if sx.InLeft[i] != sy.InLeft[i] {
					return false
				}
			}
		}
		return eq(x.Left, y.Left) && eq(x.Right, y.Right)
	}
	return eq(a.Root, b.Root)
}
