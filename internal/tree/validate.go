package tree

import (
	"fmt"

	"pclouds/internal/record"
)

// Validate checks the structural invariants every builder in this
// repository must uphold:
//
//   - the root exists and every internal node has both children;
//   - each node's N equals the sum of its class counts;
//   - an internal node's counts equal the element-wise sum of its
//     children's counts (records are conserved across splits);
//   - each node's Class is the majority of its counts;
//   - splitters reference attributes that exist in the schema with the
//     matching kind, and categorical subsets match the cardinality.
//
// The test suites call it after every build; library users can call it on
// loaded models to detect corruption or incompatible schemas.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("tree: nil root")
	}
	if t.Schema == nil {
		return fmt.Errorf("tree: nil schema")
	}
	return t.validateNode(t.Root, "root")
}

func (t *Tree) validateNode(n *Node, path string) error {
	if len(n.ClassCounts) != t.Schema.NumClasses {
		return fmt.Errorf("tree: %s: %d class counts, schema has %d classes", path, len(n.ClassCounts), t.Schema.NumClasses)
	}
	var sum int64
	for c, v := range n.ClassCounts {
		if v < 0 {
			return fmt.Errorf("tree: %s: negative count for class %d", path, c)
		}
		sum += v
	}
	if sum != n.N {
		return fmt.Errorf("tree: %s: N=%d but counts sum to %d", path, n.N, sum)
	}
	if want := n.Majority(); n.Class != want {
		return fmt.Errorf("tree: %s: class %d is not the majority (%d)", path, n.Class, want)
	}
	if n.IsLeaf() {
		if n.Left != nil || n.Right != nil {
			return fmt.Errorf("tree: %s: leaf with children", path)
		}
		return nil
	}
	if n.Left == nil || n.Right == nil {
		return fmt.Errorf("tree: %s: internal node missing a child", path)
	}
	sp := n.Splitter
	if sp.Attr < 0 || sp.Attr >= len(t.Schema.Attrs) {
		return fmt.Errorf("tree: %s: splitter attribute %d out of range", path, sp.Attr)
	}
	attr := t.Schema.Attrs[sp.Attr]
	switch sp.Kind {
	case NumericSplit:
		if attr.Kind != record.Numeric {
			return fmt.Errorf("tree: %s: numeric split on categorical attribute %q", path, attr.Name)
		}
	case CategoricalSplit:
		if attr.Kind != record.Categorical {
			return fmt.Errorf("tree: %s: categorical split on numeric attribute %q", path, attr.Name)
		}
		if len(sp.InLeft) != attr.Cardinality {
			return fmt.Errorf("tree: %s: subset length %d, attribute %q has cardinality %d", path, len(sp.InLeft), attr.Name, attr.Cardinality)
		}
	default:
		return fmt.Errorf("tree: %s: unknown split kind %d", path, sp.Kind)
	}
	if n.Left.N+n.Right.N != n.N {
		return fmt.Errorf("tree: %s: children Ns %d+%d != %d (records not conserved)", path, n.Left.N, n.Right.N, n.N)
	}
	for c := range n.ClassCounts {
		if n.Left.ClassCounts[c]+n.Right.ClassCounts[c] != n.ClassCounts[c] {
			return fmt.Errorf("tree: %s: class %d counts not conserved across split", path, c)
		}
	}
	if err := t.validateNode(n.Left, path+"L"); err != nil {
		return err
	}
	return t.validateNode(n.Right, path+"R")
}
