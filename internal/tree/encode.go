package tree

import (
	"encoding/binary"
	"fmt"
	"math"

	"pclouds/internal/record"
)

// Binary tree encoding, used to ship subtrees built by task-parallel workers
// back to the coordinator. Layout is a pre-order walk; each node is:
//
//	u8  tag: 0 = leaf, 1 = numeric split, 2 = categorical split
//	i64 N
//	u32 number of classes, then that many i64 class counts
//	leaf:        u32 class
//	numeric:     u32 attr, f64 threshold, f64 gini
//	categorical: u32 attr, f64 gini, u32 cardinality, that many u8 flags
// tagPending additionally marks a nil child in partial encodings
// (EncodePartial): an internal node whose subtree had not been built yet
// when the tree was checkpointed mid-build.
const (
	tagLeaf        = 0
	tagNumeric     = 1
	tagCategorical = 2
	tagPending     = 3
)

// Encode serialises the tree (without its schema) to bytes.
func Encode(t *Tree) []byte { return encode(t.Root, false) }

// EncodePartial serialises a possibly incomplete tree: nil children (and a
// nil root) are marked with a pending tag instead of panicking. Used by the
// per-level build checkpoints, where nodes at the frontier have been split
// but their subtrees not yet built.
func EncodePartial(t *Tree) []byte { return encode(t.Root, true) }

func encode(root *Node, partial bool) []byte {
	var dst []byte
	var enc func(n *Node)
	put64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	put32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	enc = func(n *Node) {
		if n == nil {
			if !partial {
				panic("tree: Encode on incomplete tree (use EncodePartial)")
			}
			dst = append(dst, tagPending)
			return
		}
		if n.IsLeaf() {
			dst = append(dst, tagLeaf)
		} else if n.Splitter.Kind == NumericSplit {
			dst = append(dst, tagNumeric)
		} else {
			dst = append(dst, tagCategorical)
		}
		put64(uint64(n.N))
		put32(uint32(len(n.ClassCounts)))
		for _, c := range n.ClassCounts {
			put64(uint64(c))
		}
		if n.IsLeaf() {
			put32(uint32(n.Class))
			return
		}
		sp := n.Splitter
		put32(uint32(sp.Attr))
		if sp.Kind == NumericSplit {
			put64(math.Float64bits(sp.Threshold))
			put64(math.Float64bits(sp.Gini))
		} else {
			put64(math.Float64bits(sp.Gini))
			put32(uint32(len(sp.InLeft)))
			for _, in := range sp.InLeft {
				if in {
					dst = append(dst, 1)
				} else {
					dst = append(dst, 0)
				}
			}
		}
		enc(n.Left)
		enc(n.Right)
	}
	enc(root)
	return dst
}

type decoder struct {
	src []byte
	off int
	// partial accepts pending-child markers, decoding them as nil nodes.
	partial bool
}

func (d *decoder) u8() (byte, error) {
	if d.off >= len(d.src) {
		return 0, fmt.Errorf("tree: truncated encoding at %d", d.off)
	}
	v := d.src[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.src) {
		return 0, fmt.Errorf("tree: truncated encoding at %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.src[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.src) {
		return 0, fmt.Errorf("tree: truncated encoding at %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.src[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) node() (*Node, error) {
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	if tag == tagPending {
		if !d.partial {
			return nil, fmt.Errorf("tree: pending-node marker in complete encoding")
		}
		return nil, nil
	}
	nVal, err := d.u64()
	if err != nil {
		return nil, err
	}
	nc, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int(nc) > len(d.src) { // sanity bound against corrupt input
		return nil, fmt.Errorf("tree: implausible class count %d", nc)
	}
	node := &Node{N: int64(nVal), ClassCounts: make([]int64, nc)}
	for i := range node.ClassCounts {
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		node.ClassCounts[i] = int64(v)
	}
	switch tag {
	case tagLeaf:
		cls, err := d.u32()
		if err != nil {
			return nil, err
		}
		node.Class = int32(cls)
		return node, nil
	case tagNumeric, tagCategorical:
		attr, err := d.u32()
		if err != nil {
			return nil, err
		}
		sp := &Splitter{Attr: int(attr)}
		if tag == tagNumeric {
			sp.Kind = NumericSplit
			th, err := d.u64()
			if err != nil {
				return nil, err
			}
			sp.Threshold = math.Float64frombits(th)
			g, err := d.u64()
			if err != nil {
				return nil, err
			}
			sp.Gini = math.Float64frombits(g)
		} else {
			sp.Kind = CategoricalSplit
			g, err := d.u64()
			if err != nil {
				return nil, err
			}
			sp.Gini = math.Float64frombits(g)
			card, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(card) > len(d.src) {
				return nil, fmt.Errorf("tree: implausible cardinality %d", card)
			}
			sp.InLeft = make([]bool, card)
			for i := range sp.InLeft {
				b, err := d.u8()
				if err != nil {
					return nil, err
				}
				sp.InLeft[i] = b != 0
			}
		}
		node.Splitter = sp
		node.Class = node.Majority()
		if node.Left, err = d.node(); err != nil {
			return nil, err
		}
		if node.Right, err = d.node(); err != nil {
			return nil, err
		}
		return node, nil
	default:
		return nil, fmt.Errorf("tree: bad node tag %d", tag)
	}
}

// Decode parses a tree encoded by Encode, attaching schema s.
func Decode(s *record.Schema, src []byte) (*Tree, error) {
	return decode(s, src, false)
}

// DecodePartial parses a tree encoded by EncodePartial; pending markers
// decode to nil children (and possibly a nil root).
func DecodePartial(s *record.Schema, src []byte) (*Tree, error) {
	return decode(s, src, true)
}

func decode(s *record.Schema, src []byte, partial bool) (*Tree, error) {
	d := &decoder{src: src, partial: partial}
	root, err := d.node()
	if err != nil {
		return nil, err
	}
	if d.off != len(src) {
		return nil, fmt.Errorf("tree: %d trailing bytes after decode", len(src)-d.off)
	}
	return &Tree{Schema: s, Root: root}, nil
}
