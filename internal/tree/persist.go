package tree

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"pclouds/internal/record"
)

// Model persistence: a saved model is a self-describing file carrying the
// schema (JSON header, human-inspectable) followed by the binary tree blob:
//
//	magic   u32  0x70434d31 ("pCM1")
//	hdrLen  u32
//	header  hdrLen bytes of JSON (schemaHeader)
//	tree    remaining bytes (Encode format)
//	footer  8 bytes: "pCMF" + CRC-32C(everything above), LE
//
// The footer (added by the data-plane integrity work) lets loaders reject
// *any* bit flip, not just flips that happen to break decoding; files
// written before it exist without a footer and still load.
const modelMagic uint32 = 0x70434d31

// ModelMagic is modelMagic for scrubbers: the little-endian u32 that
// begins every serialised model file.
const ModelMagic = modelMagic

// footerMagic tags the 8-byte checksum footer.
const footerMagic = "pCMF"

var modelCRCTable = crc32.MakeTable(crc32.Castagnoli)

// AppendChecksum appends the integrity footer ("pCMF" + CRC-32C of body)
// to body and returns it. Paired with StripChecksum.
func AppendChecksum(body []byte) []byte {
	var f [8]byte
	copy(f[:], footerMagic)
	binary.LittleEndian.PutUint32(f[4:], crc32.Checksum(body, modelCRCTable))
	return append(body, f[:]...)
}

// StripChecksum validates and removes the integrity footer, if present.
// Bodies without a footer pass through unchanged with hadFooter=false
// (pre-integrity files); a footer whose checksum does not match the body
// is an error naming the expected and actual CRC.
func StripChecksum(body []byte) (payload []byte, hadFooter bool, err error) {
	if len(body) < 8 || string(body[len(body)-8:len(body)-4]) != footerMagic {
		return body, false, nil
	}
	payload = body[:len(body)-8]
	want := binary.LittleEndian.Uint32(body[len(body)-4:])
	if got := crc32.Checksum(payload, modelCRCTable); got != want {
		return nil, true, fmt.Errorf("tree: model checksum mismatch (want %08x got %08x)", want, got)
	}
	return payload, true, nil
}

// schemaHeader is the JSON-serialisable form of a schema.
type schemaHeader struct {
	Classes int         `json:"classes"`
	Attrs   []attrEntry `json:"attrs"`
}

type attrEntry struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"` // "numeric" or "categorical"
	Cardinality int    `json:"cardinality,omitempty"`
}

func headerOf(s *record.Schema) schemaHeader {
	h := schemaHeader{Classes: s.NumClasses}
	for _, a := range s.Attrs {
		h.Attrs = append(h.Attrs, attrEntry{Name: a.Name, Kind: a.Kind.String(), Cardinality: a.Cardinality})
	}
	return h
}

func (h schemaHeader) schema() (*record.Schema, error) {
	attrs := make([]record.Attribute, 0, len(h.Attrs))
	for _, a := range h.Attrs {
		var kind record.Kind
		switch a.Kind {
		case "numeric":
			kind = record.Numeric
		case "categorical":
			kind = record.Categorical
		default:
			return nil, fmt.Errorf("tree: unknown attribute kind %q in model", a.Kind)
		}
		attrs = append(attrs, record.Attribute{Name: a.Name, Kind: kind, Cardinality: a.Cardinality})
	}
	return record.NewSchema(attrs, h.Classes)
}

// Write serialises the model (schema + tree + checksum footer) to w.
func Write(w io.Writer, t *Tree) error {
	hdr, err := json.Marshal(headerOf(t.Schema))
	if err != nil {
		return fmt.Errorf("tree: encoding schema: %w", err)
	}
	blob := Encode(t)
	body := make([]byte, 0, 8+len(hdr)+len(blob)+8)
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[0:], modelMagic)
	binary.LittleEndian.PutUint32(b8[4:], uint32(len(hdr)))
	body = append(body, b8[:]...)
	body = append(body, hdr...)
	body = append(body, blob...)
	if _, err := w.Write(AppendChecksum(body)); err != nil {
		return err
	}
	return nil
}

// Read parses a model written by Write, verifying the checksum footer when
// one is present (files written before the footer existed still load).
func Read(r io.Reader) (*Tree, error) {
	all, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	body, _, err := StripChecksum(all)
	if err != nil {
		return nil, err
	}
	if len(body) < 8 {
		return nil, fmt.Errorf("tree: model truncated: %d bytes", len(body))
	}
	if m := binary.LittleEndian.Uint32(body[0:]); m != modelMagic {
		return nil, fmt.Errorf("tree: bad model magic %#x", m)
	}
	hdrLen := binary.LittleEndian.Uint32(body[4:])
	if hdrLen > 1<<20 || int64(hdrLen) > int64(len(body)-8) {
		return nil, fmt.Errorf("tree: implausible model header length %d", hdrLen)
	}
	var h schemaHeader
	if err := json.Unmarshal(body[8:8+hdrLen], &h); err != nil {
		return nil, fmt.Errorf("tree: decoding model schema: %w", err)
	}
	schema, err := h.schema()
	if err != nil {
		return nil, err
	}
	return Decode(schema, body[8+hdrLen:])
}

// SaveFile writes the model to path atomically: the bytes go to a
// temporary file in the destination directory, are fsynced, and only then
// renamed over path. A concurrent reader (e.g. the serving registry's
// hot-reload poller) therefore sees either the old complete model or the
// new complete model, never a torn file; a failed write leaves path
// untouched and removes the temporary.
func SaveFile(t *Tree, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Write(f, t); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a model written by SaveFile.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
