package tree

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pclouds/internal/record"
)

// Model persistence: a saved model is a self-describing file carrying the
// schema (JSON header, human-inspectable) followed by the binary tree blob:
//
//	magic   u32  0x70434d31 ("pCM1")
//	hdrLen  u32
//	header  hdrLen bytes of JSON (schemaHeader)
//	tree    remaining bytes (Encode format)
const modelMagic uint32 = 0x70434d31

// schemaHeader is the JSON-serialisable form of a schema.
type schemaHeader struct {
	Classes int         `json:"classes"`
	Attrs   []attrEntry `json:"attrs"`
}

type attrEntry struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"` // "numeric" or "categorical"
	Cardinality int    `json:"cardinality,omitempty"`
}

func headerOf(s *record.Schema) schemaHeader {
	h := schemaHeader{Classes: s.NumClasses}
	for _, a := range s.Attrs {
		h.Attrs = append(h.Attrs, attrEntry{Name: a.Name, Kind: a.Kind.String(), Cardinality: a.Cardinality})
	}
	return h
}

func (h schemaHeader) schema() (*record.Schema, error) {
	attrs := make([]record.Attribute, 0, len(h.Attrs))
	for _, a := range h.Attrs {
		var kind record.Kind
		switch a.Kind {
		case "numeric":
			kind = record.Numeric
		case "categorical":
			kind = record.Categorical
		default:
			return nil, fmt.Errorf("tree: unknown attribute kind %q in model", a.Kind)
		}
		attrs = append(attrs, record.Attribute{Name: a.Name, Kind: kind, Cardinality: a.Cardinality})
	}
	return record.NewSchema(attrs, h.Classes)
}

// Write serialises the model (schema + tree) to w.
func Write(w io.Writer, t *Tree) error {
	hdr, err := json.Marshal(headerOf(t.Schema))
	if err != nil {
		return fmt.Errorf("tree: encoding schema: %w", err)
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[0:], modelMagic)
	binary.LittleEndian.PutUint32(b8[4:], uint32(len(hdr)))
	if _, err := w.Write(b8[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(Encode(t)); err != nil {
		return err
	}
	return nil
}

// Read parses a model written by Write.
func Read(r io.Reader) (*Tree, error) {
	var b8 [8]byte
	if _, err := io.ReadFull(r, b8[:]); err != nil {
		return nil, fmt.Errorf("tree: reading model header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(b8[0:]); m != modelMagic {
		return nil, fmt.Errorf("tree: bad model magic %#x", m)
	}
	hdrLen := binary.LittleEndian.Uint32(b8[4:])
	if hdrLen > 1<<20 {
		return nil, fmt.Errorf("tree: implausible model header length %d", hdrLen)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("tree: reading model schema: %w", err)
	}
	var h schemaHeader
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("tree: decoding model schema: %w", err)
	}
	schema, err := h.schema()
	if err != nil {
		return nil, err
	}
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(schema, blob)
}

// SaveFile writes the model to path atomically: the bytes go to a
// temporary file in the destination directory, are fsynced, and only then
// renamed over path. A concurrent reader (e.g. the serving registry's
// hot-reload poller) therefore sees either the old complete model or the
// new complete model, never a torn file; a failed write leaves path
// untouched and removes the temporary.
func SaveFile(t *Tree, path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Write(f, t); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a model written by SaveFile.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
