package tree

import (
	"bytes"
	"testing"

	"pclouds/internal/record"
)

// FuzzDecode: arbitrary bytes must never panic the tree decoder; anything
// it accepts must round-trip through Encode.
func FuzzDecode(f *testing.F) {
	s := testSchemaForFuzz()
	valid := Encode(&Tree{Schema: s, Root: &Node{ClassCounts: []int64{3, 4}, N: 7, Class: 1}})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(s, data)
		if err != nil {
			return
		}
		re := Encode(tr)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted tree does not round-trip")
		}
	})
}

// FuzzModelRead: the model container must reject corrupt input gracefully.
func FuzzModelRead(f *testing.F) {
	s := testSchemaForFuzz()
	var buf bytes.Buffer
	Write(&buf, &Tree{Schema: s, Root: &Node{ClassCounts: []int64{1, 2}, N: 3, Class: 1}})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if tr.Schema == nil || tr.Root == nil {
			t.Fatal("accepted model with nil parts")
		}
	})
}

func testSchemaForFuzz() *record.Schema {
	return record.MustSchema([]record.Attribute{
		{Name: "x", Kind: record.Numeric},
		{Name: "c", Kind: record.Categorical, Cardinality: 3},
	}, 2)
}
