package tree

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the tree in Graphviz dot format: internal nodes show
// their test (with attribute names from the schema), leaves show the
// predicted class and class counts. Pipe into `dot -Tsvg` to visualise.
func (t *Tree) WriteDot(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph tree {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace"];`)
	id := 0
	var walk func(n *Node) (int, error)
	walk = func(n *Node) (int, error) {
		me := id
		id++
		if n.IsLeaf() {
			if _, err := fmt.Fprintf(w, "  n%d [label=\"class %d\\nn=%d %v\", style=filled, fillcolor=lightgrey];\n",
				me, n.Class, n.N, n.ClassCounts); err != nil {
				return 0, err
			}
			return me, nil
		}
		if _, err := fmt.Fprintf(w, "  n%d [label=\"%s\\nn=%d gini=%.3f\"];\n",
			me, dotEscape(t.splitterLabel(n.Splitter)), n.N, n.Splitter.Gini); err != nil {
			return 0, err
		}
		l, err := walk(n.Left)
		if err != nil {
			return 0, err
		}
		r, err := walk(n.Right)
		if err != nil {
			return 0, err
		}
		if _, err := fmt.Fprintf(w, "  n%d -> n%d [label=\"yes\"];\n  n%d -> n%d [label=\"no\"];\n", me, l, me, r); err != nil {
			return 0, err
		}
		return me, nil
	}
	if _, err := walk(t.Root); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// splitterLabel renders a splitter with the schema's attribute names.
func (t *Tree) splitterLabel(sp *Splitter) string {
	name := fmt.Sprintf("attr[%d]", sp.Attr)
	if sp.Attr >= 0 && sp.Attr < len(t.Schema.Attrs) {
		name = t.Schema.Attrs[sp.Attr].Name
	}
	if sp.Kind == NumericSplit {
		return fmt.Sprintf("%s <= %.6g", name, sp.Threshold)
	}
	vals := make([]string, 0, len(sp.InLeft))
	for v, in := range sp.InLeft {
		if in {
			vals = append(vals, fmt.Sprintf("%d", v))
		}
	}
	return fmt.Sprintf("%s in {%s}", name, strings.Join(vals, ","))
}

func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
