package tree

import (
	"strings"
	"testing"
)

func TestWriteDot(t *testing.T) {
	tr := buildTestTree(t)
	var b strings.Builder
	if err := tr.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"digraph tree {",
		"x <= 10",        // numeric splitter with attribute name
		"color in {0,2}", // categorical splitter with attribute name
		"class 1",        // a leaf
		`[label="yes"]`,  // edges
		`[label="no"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q:\n%s", want, out)
		}
	}
	// Node and edge counts: 5 nodes, 4 edges.
	if got := strings.Count(out, "label=\"yes\""); got != 2 {
		t.Errorf("yes-edges %d, want 2", got)
	}
	if got := strings.Count(out, "fillcolor=lightgrey"); got != 3 {
		t.Errorf("leaves %d, want 3", got)
	}
}

func TestDotEscape(t *testing.T) {
	if got := dotEscape(`a"b\c`); got != `a\"b\\c` {
		t.Fatalf("escape: %q", got)
	}
}

func TestWriteDotLeafOnly(t *testing.T) {
	s := testSchema(t)
	leaf := &Node{ClassCounts: []int64{3, 1}, N: 4, Class: 0}
	tr := &Tree{Schema: s, Root: leaf}
	var b strings.Builder
	if err := tr.WriteDot(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "class 0") {
		t.Fatal("leaf-only dot missing the leaf")
	}
}
