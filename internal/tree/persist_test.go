package tree

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("model roundtrip changed the tree")
	}
	// Schema must round-trip too.
	if got.Schema.NumClasses != tr.Schema.NumClasses || len(got.Schema.Attrs) != len(tr.Schema.Attrs) {
		t.Fatal("schema lost")
	}
	for i, a := range tr.Schema.Attrs {
		g := got.Schema.Attrs[i]
		if g.Name != a.Name || g.Kind != a.Kind || g.Cardinality != a.Cardinality {
			t.Fatalf("attribute %d mismatch: %+v vs %+v", i, g, a)
		}
	}
	// Classification must be preserved.
	r := rec(5, 0, 0, 0)
	if got.Classify(r) != tr.Classify(r) {
		t.Fatal("loaded model classifies differently")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	tr := buildTestTree(t)
	path := filepath.Join(t.TempDir(), "model.pcm")
	if err := SaveFile(tr, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("file roundtrip changed the tree")
	}
}

func TestSaveFileOverwritesAtomically(t *testing.T) {
	tr := buildTestTree(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.pcm")
	// Save twice over the same path; the second save must replace the first
	// completely and leave no temporary files behind.
	for i := 0; i < 2; i++ {
		if err := SaveFile(tr, path); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("overwritten model does not match")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temporary file %q left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the model file, got %d entries", len(entries))
	}
}

func TestSaveFileFailureLeavesNoPartialFile(t *testing.T) {
	tr := buildTestTree(t)
	dir := t.TempDir()
	// Make the destination "directory" a regular file so the temp-file
	// creation (and hence the whole save) fails before path can exist.
	blocker := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(blocker, "model.pcm")
	if err := SaveFile(tr, path); err == nil {
		t.Fatal("SaveFile into a non-directory succeeded")
	}
	if _, err := os.Stat(path); err == nil {
		t.Fatal("partial file exists at destination")
	}
	// The parent dir must contain only the blocker file — no stray temps.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "not-a-dir" {
		t.Fatalf("unexpected directory contents after failed save: %v", entries)
	}
}

func TestModelCorruptionDetected(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated model accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("header-only model accepted")
	}
}

// TestModelFooterEveryBitFlipDetected: with the checksum footer in place,
// ANY single-bit flip in a saved model must fail to load — not only flips
// that happen to break the decoder.
func TestModelFooterEveryBitFlipDetected(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for bit := 0; bit < len(raw)*8; bit++ {
		bad := append([]byte(nil), raw...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d bit %d loaded without error", bit/8, bit%8)
		}
	}
}

// TestModelLegacyWithoutFooterLoads: files written before the footer
// existed (magic + header + blob, nothing after) must still load.
func TestModelLegacyWithoutFooterLoads(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	legacy, had, err := StripChecksum(raw)
	if err != nil || !had {
		t.Fatalf("written model lacks a valid footer: had=%v err=%v", had, err)
	}
	got, err := Read(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy footerless model rejected: %v", err)
	}
	if !Equal(tr, got) {
		t.Fatal("legacy model roundtrip changed the tree")
	}
}

// TestAppendStripChecksum: the footer helpers round-trip and reject a
// mismatched body.
func TestAppendStripChecksum(t *testing.T) {
	body := []byte("arbitrary checkpoint artifact bytes")
	framed := AppendChecksum(append([]byte(nil), body...))
	got, had, err := StripChecksum(framed)
	if err != nil || !had {
		t.Fatalf("had=%v err=%v", had, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("payload changed")
	}
	framed[3] ^= 0x04
	if _, _, err := StripChecksum(framed); err == nil {
		t.Fatal("corrupted body passed the footer check")
	}
}
