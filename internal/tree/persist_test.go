package tree

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestModelRoundTrip(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("model roundtrip changed the tree")
	}
	// Schema must round-trip too.
	if got.Schema.NumClasses != tr.Schema.NumClasses || len(got.Schema.Attrs) != len(tr.Schema.Attrs) {
		t.Fatal("schema lost")
	}
	for i, a := range tr.Schema.Attrs {
		g := got.Schema.Attrs[i]
		if g.Name != a.Name || g.Kind != a.Kind || g.Cardinality != a.Cardinality {
			t.Fatalf("attribute %d mismatch: %+v vs %+v", i, g, a)
		}
	}
	// Classification must be preserved.
	r := rec(5, 0, 0, 0)
	if got.Classify(r) != tr.Classify(r) {
		t.Fatal("loaded model classifies differently")
	}
}

func TestModelFileRoundTrip(t *testing.T) {
	tr := buildTestTree(t)
	path := filepath.Join(t.TempDir(), "model.pcm")
	if err := SaveFile(tr, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("file roundtrip changed the tree")
	}
}

func TestModelCorruptionDetected(t *testing.T) {
	tr := buildTestTree(t)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated model accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("header-only model accepted")
	}
}
