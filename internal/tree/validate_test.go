package tree

import (
	"strings"
	"testing"
)

func TestValidateAcceptsWellFormed(t *testing.T) {
	tr := buildTestTree(t)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Tree)
		want   string
	}{
		{"nil root", func(tr *Tree) { tr.Root = nil }, "nil root"},
		{"nil schema", func(tr *Tree) { tr.Schema = nil }, "nil schema"},
		{"count sum", func(tr *Tree) { tr.Root.N++ }, "counts sum"},
		{"not majority", func(tr *Tree) { tr.Root.Right.Class = 0 }, "majority"},
		{"missing child", func(tr *Tree) { tr.Root.Right = nil }, "missing a child"},
		{"leaf with child", func(tr *Tree) {
			leaf := tr.Root.Right
			leaf.Left = &Node{ClassCounts: []int64{1, 0}, N: 1}
		}, "leaf with children"},
		{"attr range", func(tr *Tree) { tr.Root.Splitter.Attr = 99 }, "out of range"},
		{"kind mismatch", func(tr *Tree) { tr.Root.Splitter.Attr = 1 }, "numeric split on categorical"},
		{"subset length", func(tr *Tree) { tr.Root.Left.Splitter.InLeft = []bool{true} }, "cardinality"},
		{"records not conserved", func(tr *Tree) {
			tr.Root.Left.N--
			tr.Root.Left.ClassCounts[0]--
		}, "not conserved"},
		{"class counts not conserved", func(tr *Tree) {
			// Shift a count between classes in a child: child sums still
			// match N, but per-class conservation breaks.
			tr.Root.Left.ClassCounts[0]++
			tr.Root.Left.ClassCounts[1]--
		}, "counts not conserved"},
		{"negative count", func(tr *Tree) {
			tr.Root.ClassCounts[0] = -1
			tr.Root.ClassCounts[1] = tr.Root.N + 1
		}, "negative count"},
	}
	for _, tc := range cases {
		tr := buildTestTree(t)
		tc.mutate(tr)
		err := tr.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
