package tree

import (
	"math/rand"
	"strings"
	"testing"

	"pclouds/internal/record"
)

func testSchema(t *testing.T) *record.Schema {
	t.Helper()
	return record.MustSchema([]record.Attribute{
		{Name: "x", Kind: record.Numeric},
		{Name: "color", Kind: record.Categorical, Cardinality: 3},
		{Name: "y", Kind: record.Numeric},
	}, 2)
}

// buildTestTree: root splits on x<=10; left splits on color in {0,2}.
func buildTestTree(t *testing.T) *Tree {
	t.Helper()
	s := testSchema(t)
	leaf := func(class int32, n int64) *Node {
		counts := make([]int64, 2)
		counts[class] = n
		return &Node{ClassCounts: counts, N: n, Class: class}
	}
	inner := &Node{
		Splitter:    &Splitter{Kind: CategoricalSplit, Attr: 1, InLeft: []bool{true, false, true}, Gini: 0.2},
		Left:        leaf(0, 5),
		Right:       leaf(1, 5),
		ClassCounts: []int64{5, 5},
		N:           10,
	}
	inner.Class = inner.Majority()
	root := &Node{
		Splitter:    &Splitter{Kind: NumericSplit, Attr: 0, Threshold: 10, Gini: 0.3},
		Left:        inner,
		Right:       leaf(1, 7),
		ClassCounts: []int64{5, 12},
		N:           17,
	}
	root.Class = root.Majority()
	return &Tree{Schema: s, Root: root}
}

func rec(x float64, color int32, y float64, class int32) record.Record {
	return record.Record{Num: []float64{x, y}, Cat: []int32{color}, Class: class}
}

func TestClassifyRouting(t *testing.T) {
	tr := buildTestTree(t)
	cases := []struct {
		r    record.Record
		want int32
	}{
		{rec(5, 0, 0, 0), 0},  // left, color in subset -> class 0
		{rec(10, 2, 0, 0), 0}, // boundary goes left; color 2 in subset
		{rec(5, 1, 0, 0), 1},  // left, color not in subset -> class 1
		{rec(11, 0, 0, 0), 1}, // right leaf
	}
	for i, tc := range cases {
		if got := tr.Classify(tc.r); got != tc.want {
			t.Errorf("case %d: got class %d, want %d", i, got, tc.want)
		}
	}
}

func TestGoesLeftUnseenCategoryRoutesRight(t *testing.T) {
	tr := buildTestTree(t)
	// color has cardinality 3; values 3, 99 and -1 were never seen in
	// training. They must route to the right child (the no-branch) instead
	// of panicking, so a serving-time request with an unseen category gets
	// a deterministic prediction.
	for _, color := range []int32{3, 99, -1} {
		r := rec(5, color, 0, 0)
		if got := tr.Classify(r); got != 1 {
			t.Fatalf("color=%d: got class %d, want right-branch class 1", color, got)
		}
		sp := tr.Root.Left.Splitter
		if sp.GoesLeft(tr.Schema, r) {
			t.Fatalf("color=%d: GoesLeft returned true for out-of-range category", color)
		}
	}
	// A record with missing attribute slots must also route right, not panic.
	empty := record.Record{}
	if tr.Root.Splitter.GoesLeft(tr.Schema, empty) {
		t.Fatal("numeric GoesLeft on empty record returned true")
	}
	if tr.Root.Left.Splitter.GoesLeft(tr.Schema, empty) {
		t.Fatal("categorical GoesLeft on empty record returned true")
	}
}

func TestLeafReturnsSameAsClassify(t *testing.T) {
	tr := buildTestTree(t)
	r := rec(3, 1, 9, 0)
	if tr.Leaf(r).Class != tr.Classify(r) {
		t.Fatal("Leaf and Classify disagree")
	}
}

func TestCountsAndDepth(t *testing.T) {
	tr := buildTestTree(t)
	if tr.NumNodes() != 5 {
		t.Fatalf("nodes %d", tr.NumNodes())
	}
	if tr.NumLeaves() != 3 {
		t.Fatalf("leaves %d", tr.NumLeaves())
	}
	if tr.Depth() != 2 {
		t.Fatalf("depth %d", tr.Depth())
	}
}

func TestMajorityTieBreaksLow(t *testing.T) {
	n := &Node{ClassCounts: []int64{5, 5}}
	if n.Majority() != 0 {
		t.Fatal("tie should pick class 0")
	}
	n = &Node{ClassCounts: []int64{1, 7, 7}}
	if n.Majority() != 1 {
		t.Fatal("tie should pick the lower class")
	}
}

func TestDumpMentionsSplitters(t *testing.T) {
	tr := buildTestTree(t)
	s := tr.String()
	if !strings.Contains(s, "attr[0] <= 10") {
		t.Fatalf("dump missing numeric splitter:\n%s", s)
	}
	if !strings.Contains(s, "attr[1] in {0,2}") {
		t.Fatalf("dump missing categorical splitter:\n%s", s)
	}
	if !strings.Contains(s, "leaf") {
		t.Fatalf("dump missing leaves:\n%s", s)
	}
}

func TestEqual(t *testing.T) {
	a := buildTestTree(t)
	b := buildTestTree(t)
	if !Equal(a, b) {
		t.Fatal("identical trees not equal")
	}
	b.Root.Splitter.Threshold = 11
	if Equal(a, b) {
		t.Fatal("different thresholds compared equal")
	}
	c := buildTestTree(t)
	c.Root.Left.Splitter.InLeft[1] = true
	if Equal(a, c) {
		t.Fatal("different subsets compared equal")
	}
	d := buildTestTree(t)
	d.Root.Right = nil
	if Equal(a, d) {
		t.Fatal("different shapes compared equal")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := buildTestTree(t)
	blob := Encode(tr)
	got, err := Decode(tr.Schema, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(tr, got) {
		t.Fatal("roundtrip tree differs")
	}
	// Class counts and N must survive too.
	if got.Root.N != 17 || got.Root.ClassCounts[1] != 12 {
		t.Fatalf("root stats lost: %+v", got.Root)
	}
}

func TestDecodeErrors(t *testing.T) {
	tr := buildTestTree(t)
	blob := Encode(tr)
	if _, err := Decode(tr.Schema, blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob should fail")
	}
	if _, err := Decode(tr.Schema, append(blob, 0)); err == nil {
		t.Fatal("trailing bytes should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := Decode(tr.Schema, bad); err == nil {
		t.Fatal("bad tag should fail")
	}
	if _, err := Decode(tr.Schema, nil); err == nil {
		t.Fatal("empty blob should fail")
	}
}

func TestEncodeDecodeRandomTrees(t *testing.T) {
	s := testSchema(t)
	rng := rand.New(rand.NewSource(13))
	var gen func(depth int) *Node
	gen = func(depth int) *Node {
		if depth == 0 || rng.Intn(3) == 0 {
			n := &Node{ClassCounts: []int64{int64(rng.Intn(100)), int64(rng.Intn(100))}}
			n.N = n.ClassCounts[0] + n.ClassCounts[1]
			n.Class = n.Majority()
			return n
		}
		var sp *Splitter
		if rng.Intn(2) == 0 {
			sp = &Splitter{Kind: NumericSplit, Attr: []int{0, 2}[rng.Intn(2)], Threshold: rng.NormFloat64() * 100, Gini: rng.Float64()}
		} else {
			sp = &Splitter{Kind: CategoricalSplit, Attr: 1, InLeft: []bool{rng.Intn(2) == 0, rng.Intn(2) == 0, true}, Gini: rng.Float64()}
		}
		n := &Node{Splitter: sp, Left: gen(depth - 1), Right: gen(depth - 1), ClassCounts: []int64{1, 1}, N: 2}
		n.Class = n.Majority()
		return n
	}
	for i := 0; i < 50; i++ {
		tr := &Tree{Schema: s, Root: gen(5)}
		got, err := Decode(s, Encode(tr))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(tr, got) {
			t.Fatal("random tree roundtrip mismatch")
		}
	}
}

func TestWalkOrder(t *testing.T) {
	tr := buildTestTree(t)
	var depths []int
	tr.Walk(func(n *Node, d int) { depths = append(depths, d) })
	want := []int{0, 1, 2, 2, 1} // pre-order
	if len(depths) != len(want) {
		t.Fatalf("visited %d nodes", len(depths))
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("pre-order depths %v, want %v", depths, want)
		}
	}
}
