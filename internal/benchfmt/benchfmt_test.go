package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFile(index int, simSec, commBytes, rowsPerSec float64) *File {
	return &File{
		SchemaVersion: SchemaVersion,
		Index:         index,
		Benchmarks: []Benchmark{
			{
				Name: "build/p4",
				Metrics: []Metric{
					{Name: "sim_seconds", Value: simSec, Unit: "s", Better: LowerIsBetter, Gate: true},
					{Name: "comm_bytes", Value: commBytes, Unit: "B", Better: LowerIsBetter, Gate: true},
					{Name: "rows_per_sec", Value: rowsPerSec, Unit: "rows/s", Better: HigherIsBetter},
				},
			},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f := sampleFile(3, 1.5, 4096, 1e5)
	path, err := Write(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_3.json" {
		t.Fatalf("wrote %s, want BENCH_3.json", path)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 3 || len(got.Benchmarks) != 1 || got.Benchmarks[0].Metrics[0].Value != 1.5 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*File){
		"schema":      func(f *File) { f.SchemaVersion = 99 },
		"index":       func(f *File) { f.Index = 0 },
		"empty":       func(f *File) { f.Benchmarks = nil },
		"dup bench":   func(f *File) { f.Benchmarks = append(f.Benchmarks, f.Benchmarks[0]) },
		"dup metric":  func(f *File) { b := &f.Benchmarks[0]; b.Metrics = append(b.Metrics, b.Metrics[0]) },
		"bad better":  func(f *File) { f.Benchmarks[0].Metrics[0].Better = "sideways" },
		"empty name":  func(f *File) { f.Benchmarks[0].Name = "" },
		"metric name": func(f *File) { f.Benchmarks[0].Metrics[0].Name = "" },
	}
	for name, mutate := range cases {
		f := sampleFile(1, 1, 1, 1)
		mutate(f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken file", name)
		}
	}
	if err := sampleFile(1, 1, 1, 1).Validate(); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestIndicesAndLatest(t *testing.T) {
	dir := t.TempDir()
	if prev, newest, err := Latest(dir); err != nil || prev != nil || newest != nil {
		t.Fatalf("empty dir: got %v %v %v", prev, newest, err)
	}
	for _, i := range []int{2, 10, 5} {
		if _, err := Write(dir, sampleFile(i, float64(i), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// A stray file must not confuse the index scan.
	os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte("{}"), 0o666)
	idx, err := Indices(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 || idx[0] != 2 || idx[2] != 10 {
		t.Fatalf("indices = %v, want [2 5 10]", idx)
	}
	prev, newest, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if newest.Index != 10 || prev.Index != 5 {
		t.Fatalf("latest = %d/%d, want 5/10", prev.Index, newest.Index)
	}
}

func TestCompareGating(t *testing.T) {
	old := sampleFile(1, 1.0, 1000, 1e5)
	// sim_seconds 40% worse (gated -> regression at 25%), comm_bytes 10%
	// worse (within threshold), rows_per_sec halved (ungated -> reported,
	// never regresses).
	next := sampleFile(2, 1.4, 1100, 5e4)
	rep := Compare(old, next, 0.25)
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "sim_seconds" {
		t.Fatalf("regressions = %+v, want only sim_seconds", regs)
	}
	var byName = map[string]Delta{}
	for _, d := range rep.Deltas {
		byName[d.Metric] = d
	}
	if d := byName["comm_bytes"]; d.Regressed || d.Change < 0.09 || d.Change > 0.11 {
		t.Fatalf("comm_bytes delta wrong: %+v", d)
	}
	if d := byName["rows_per_sec"]; d.Regressed || d.Change < 0.49 {
		t.Fatalf("rows_per_sec must be worse but ungated: %+v", d)
	}
	if s := rep.String(); !strings.Contains(s, "REGRESSED") || !strings.Contains(s, "sim_seconds") {
		t.Fatalf("report missing regression marker:\n%s", s)
	}

	// Improvements never regress.
	better := sampleFile(3, 0.5, 900, 2e5)
	if regs := Compare(old, better, 0.25).Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func TestCompareAddedRemoved(t *testing.T) {
	old := sampleFile(1, 1, 1, 1)
	next := sampleFile(2, 1, 1, 1)
	next.Benchmarks = append(next.Benchmarks, Benchmark{
		Name:    "serve/load",
		Metrics: []Metric{{Name: "rows_per_sec", Value: 1, Unit: "rows/s", Better: HigherIsBetter}},
	})
	next.Benchmarks[0].Metrics = next.Benchmarks[0].Metrics[:2] // drop rows_per_sec
	rep := Compare(old, next, 0.25)
	if len(rep.Added) != 1 || rep.Added[0] != "serve/load" {
		t.Fatalf("added = %v", rep.Added)
	}
	if len(rep.Removed) != 1 || rep.Removed[0] != "build/p4/rows_per_sec" {
		t.Fatalf("removed = %v", rep.Removed)
	}
}
