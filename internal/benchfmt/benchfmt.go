// Package benchfmt defines the schema-versioned benchmark trajectory files
// (BENCH_<n>.json) that cmd/benchrun writes and cmd/benchdiff compares. The
// trajectory is the repo's performance history: one file per snapshot,
// numbered monotonically, each holding the same fixed-seed benchmarks so any
// two snapshots are directly comparable.
//
// Metrics carry a direction (higher- or lower-is-better) and a Gate flag.
// Gated metrics are the deterministic ones — simulated seconds, bytes on the
// wire, allocations — where any drift beyond the threshold is a real change
// in the code, not noise; wall-clock metrics (rows/s, io-wait) ride along
// as informational context because they vary with the host.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"text/tabwriter"
)

// SchemaVersion is written into every file; Read rejects files from a
// different schema so a diff never compares across incompatible layouts.
const SchemaVersion = 1

// Directions for Metric.Better.
const (
	HigherIsBetter = "higher"
	LowerIsBetter  = "lower"
)

// Metric is one measured value of one benchmark.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// Better is "higher" or "lower".
	Better string `json:"better"`
	// Gate marks the metric as regression-gating; ungated metrics are
	// reported but never fail a diff.
	Gate bool `json:"gate"`
}

// Benchmark is one named workload's metrics.
type Benchmark struct {
	Name    string   `json:"name"`
	Metrics []Metric `json:"metrics"`
}

// File is one trajectory snapshot.
type File struct {
	SchemaVersion int    `json:"schema_version"`
	Index         int    `json:"index"`
	GoVersion     string `json:"go_version,omitempty"`
	// Note is free-form provenance ("quick", a commit, a date).
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Validate checks the invariants Read enforces: matching schema version, a
// positive index, unique benchmark names, unique metric names per benchmark,
// and a known direction on every metric.
func (f *File) Validate() error {
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("benchfmt: schema version %d, want %d", f.SchemaVersion, SchemaVersion)
	}
	if f.Index <= 0 {
		return fmt.Errorf("benchfmt: index %d, want positive", f.Index)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("benchfmt: no benchmarks")
	}
	seenBench := make(map[string]bool)
	for _, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("benchfmt: benchmark with empty name")
		}
		if seenBench[b.Name] {
			return fmt.Errorf("benchfmt: duplicate benchmark %q", b.Name)
		}
		seenBench[b.Name] = true
		seenMetric := make(map[string]bool)
		for _, m := range b.Metrics {
			if m.Name == "" {
				return fmt.Errorf("benchfmt: %s: metric with empty name", b.Name)
			}
			if seenMetric[m.Name] {
				return fmt.Errorf("benchfmt: %s: duplicate metric %q", b.Name, m.Name)
			}
			seenMetric[m.Name] = true
			if m.Better != HigherIsBetter && m.Better != LowerIsBetter {
				return fmt.Errorf("benchfmt: %s/%s: better=%q, want %q or %q",
					b.Name, m.Name, m.Better, HigherIsBetter, LowerIsBetter)
			}
		}
	}
	return nil
}

// Path returns dir/BENCH_<index>.json.
func Path(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", index))
}

// Write validates f and writes it to dir/BENCH_<f.Index>.json.
func Write(dir string, f *File) (string, error) {
	if err := f.Validate(); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	path := Path(dir, f.Index)
	if err := os.WriteFile(path, append(data, '\n'), 0o666); err != nil {
		return "", err
	}
	return path, nil
}

// Read loads and validates one trajectory file.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Indices returns the trajectory indices present in dir, ascending.
func Indices(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		var n int
		fmt.Sscanf(m[1], "%d", &n)
		if n > 0 {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Latest returns the two newest snapshots in dir (previous, newest). With
// exactly one snapshot previous is nil; with none both are.
func Latest(dir string) (prev, newest *File, err error) {
	idx, err := Indices(dir)
	if err != nil {
		return nil, nil, err
	}
	if len(idx) == 0 {
		return nil, nil, nil
	}
	newest, err = Read(Path(dir, idx[len(idx)-1]))
	if err != nil {
		return nil, nil, err
	}
	if len(idx) > 1 {
		prev, err = Read(Path(dir, idx[len(idx)-2]))
		if err != nil {
			return nil, nil, err
		}
	}
	return prev, newest, nil
}

// Delta is one metric's change between two snapshots.
type Delta struct {
	Bench, Metric string
	Unit          string
	Old, New      float64
	// Change is the signed relative change in the *worse* direction: +0.10
	// means 10% worse, -0.10 means 10% better, regardless of the metric's
	// polarity. NaN-free: a zero old value with a nonzero new one reports
	// +Inf worth of change as 1e9.
	Change float64
	Gate   bool
	// Regressed means the change is worse than the threshold on a gated
	// metric.
	Regressed bool
}

// Report is the outcome of comparing two snapshots.
type Report struct {
	OldIndex, NewIndex int
	Deltas             []Delta
	// Added/Removed name benchmarks or metrics present in only one side.
	Added, Removed []string
}

// Regressions returns the regressed deltas.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs every metric present in both snapshots. threshold is the
// relative worsening a gated metric may show before it counts as a
// regression (0.25 = 25%).
func Compare(old, new_ *File, threshold float64) *Report {
	rep := &Report{OldIndex: old.Index, NewIndex: new_.Index}
	oldBench := make(map[string]Benchmark, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBench[b.Name] = b
	}
	seenBench := make(map[string]bool)
	for _, nb := range new_.Benchmarks {
		seenBench[nb.Name] = true
		ob, ok := oldBench[nb.Name]
		if !ok {
			rep.Added = append(rep.Added, nb.Name)
			continue
		}
		oldMetric := make(map[string]Metric, len(ob.Metrics))
		for _, m := range ob.Metrics {
			oldMetric[m.Name] = m
		}
		seenMetric := make(map[string]bool)
		for _, nm := range nb.Metrics {
			seenMetric[nm.Name] = true
			om, ok := oldMetric[nm.Name]
			if !ok {
				rep.Added = append(rep.Added, nb.Name+"/"+nm.Name)
				continue
			}
			d := Delta{
				Bench: nb.Name, Metric: nm.Name, Unit: nm.Unit,
				Old: om.Value, New: nm.Value,
				// Gate only when both sides agree the metric gates, so a
				// deliberate de-gating takes effect in one snapshot.
				Gate: nm.Gate && om.Gate,
			}
			d.Change = worsening(om.Value, nm.Value, nm.Better)
			d.Regressed = d.Gate && d.Change > threshold
			rep.Deltas = append(rep.Deltas, d)
		}
		for _, om := range ob.Metrics {
			if !seenMetric[om.Name] {
				rep.Removed = append(rep.Removed, nb.Name+"/"+om.Name)
			}
		}
	}
	for _, ob := range old.Benchmarks {
		if !seenBench[ob.Name] {
			rep.Removed = append(rep.Removed, ob.Name)
		}
	}
	return rep
}

// worsening returns the relative change in the worse direction.
func worsening(old, new_ float64, better string) float64 {
	if old == new_ {
		return 0
	}
	if old == 0 {
		// Appearing from zero: worse for lower-is-better, better otherwise.
		if better == LowerIsBetter {
			return 1e9
		}
		return -1e9
	}
	rel := (new_ - old) / old
	if better == HigherIsBetter {
		rel = -rel
	}
	return rel
}

// String renders the report as the table benchdiff prints.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trajectory: BENCH_%d -> BENCH_%d\n", r.OldIndex, r.NewIndex)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tmetric\told\tnew\tchange\tgate\tverdict")
	for _, d := range r.Deltas {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSED"
		}
		gate := "-"
		if d.Gate {
			gate = "gate"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.5g %s\t%.5g %s\t%s\t%s\t%s\n",
			d.Bench, d.Metric, d.Old, d.Unit, d.New, d.Unit, changeString(d.Change), gate, verdict)
	}
	tw.Flush()
	for _, a := range r.Added {
		fmt.Fprintf(&sb, "added: %s\n", a)
	}
	for _, rm := range r.Removed {
		fmt.Fprintf(&sb, "removed: %s\n", rm)
	}
	return sb.String()
}

func changeString(c float64) string {
	switch {
	case c >= 1e9:
		return "worse (from zero)"
	case c <= -1e9:
		return "better (from zero)"
	case c > 0:
		return fmt.Sprintf("%.1f%% worse", 100*c)
	case c < 0:
		return fmt.Sprintf("%.1f%% better", -100*c)
	default:
		return "none"
	}
}
