package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceFile is the per-rank JSON trace layout.
type traceFile struct {
	Rank     int              `json:"rank"`
	Spans    []*Span          `json:"spans"`
	Phases   []PhaseTotal     `json:"phases"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// WriteJSON writes the rank's full trace — every completed span in start
// order, the per-phase aggregation, and the free-form counters — as one
// JSON document. A nil recorder writes an empty trace.
func (r *Recorder) WriteJSON(w io.Writer) error {
	tf := traceFile{Rank: r.Rank(), Spans: r.Spans(), Phases: r.Summary(), Counters: r.Counters()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tf)
}

// chromeEvent is one Chrome trace_event entry. The exporter emits complete
// ("X") events plus process_name/thread_name metadata, with pid = tid =
// rank: distributed ranks really are separate processes, and giving each
// rank its own pid keeps about://tracing and Perfetto grouping per-rank
// timelines the same way for simulated and TCP builds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the recorders' spans as a Chrome trace_event JSON
// document (loadable in about://tracing or ui.perfetto.dev), one timeline
// row per rank. Timestamps are microseconds relative to each recorder's
// epoch; the per-span args carry the instance label, simulated seconds and
// communication/disk byte deltas.
func WriteChromeTrace(w io.Writer, recs []*Recorder) error {
	trace := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, r := range recs {
		if r == nil {
			continue
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: r.Rank(), Tid: r.Rank(),
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r.Rank())},
		}, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: r.Rank(), Tid: r.Rank(),
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r.Rank())},
		})
		for _, s := range r.Spans() {
			args := map[string]any{
				"sim_s":      s.DurSim,
				"comm_bytes": s.Comm.BytesSent,
				"wait_s":     s.Comm.WaitSec,
				"read_B":     s.IO.ReadBytes,
				"write_B":    s.IO.WriteBytes,
				"io_wait_s":  s.IO.WaitSec,
			}
			if s.ID != "" {
				args["id"] = s.ID
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: s.Name, Cat: "build", Ph: "X", Pid: s.Rank, Tid: s.Rank,
				Ts: s.StartWall * 1e6, Dur: s.DurWall * 1e6, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// WriteChromeTraceFile is WriteChromeTrace to a named file.
func WriteChromeTraceFile(path string, recs []*Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
