package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a metric family for exposition.
type Kind int

const (
	// KindCounter is a monotonically increasing cumulative value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution (see Histogram).
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Registry is a typed metrics registry: named families of counters, gauges
// and histograms, each family carrying a fixed set of label keys and any
// number of label-value series. It is the single scrapeable surface the
// previously siloed counters (comm.Stats, ooc.IOStats, serve stats,
// driver.Vars, checkpoint counters) are wired onto, and it renders the
// Prometheus text exposition format.
//
// Registration is idempotent: asking for an existing family with the same
// kind and label keys returns the existing one, so long-lived processes and
// tests can re-register freely (mirroring obs.Publish). A kind or label-key
// mismatch for an existing name panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

var defaultRegistry = NewRegistry()

// DefaultRegistry is the process-wide registry served at /metrics by
// ServeDebug.
func DefaultRegistry() *Registry { return defaultRegistry }

// Family is one named metric with fixed label keys; each distinct
// combination of label values is a Series.
type Family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	// bounds are the bucket bounds for histogram families (nil otherwise).
	bounds []float64

	mu     sync.Mutex
	series map[string]*Series
}

func (r *Registry) family(name, help string, kind Kind, labelKeys []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || !equalStrings(f.labelKeys, labelKeys) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labelKeys, f.kind, f.labelKeys))
		}
		return f
	}
	f := &Family{
		name: name, help: help, kind: kind,
		labelKeys: append([]string(nil), labelKeys...),
		series:    make(map[string]*Series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labelKeys ...string) *Family {
	return r.family(name, help, KindCounter, labelKeys)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelKeys ...string) *Family {
	return r.family(name, help, KindGauge, labelKeys)
}

// HistogramVec registers (or returns) a histogram family with the given
// bucket bounds (used for series created via With; Attach ignores them).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *Family {
	f := r.family(name, help, KindHistogram, labelKeys)
	f.mu.Lock()
	if f.bounds == nil {
		f.bounds = append([]float64(nil), bounds...)
	}
	f.mu.Unlock()
	return f
}

// Series is one label-value combination of a family. Counter and gauge
// series hold a float64 (or a live callback); histogram series hold a
// *Histogram.
type Series struct {
	fam         *Family
	labelValues []string

	mu   sync.Mutex
	val  float64
	fn   func() float64
	hist *Histogram
}

func seriesKey(values []string) string { return strings.Join(values, "\x00") }

func (f *Family) with(values []string) *Series {
	if len(values) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelKeys), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &Series{fam: f, labelValues: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			bounds := f.bounds
			if bounds == nil {
				bounds = ExpBounds(1e-6, 4, 16)
			}
			s.hist = NewHistogram(bounds...)
		}
		f.series[key] = s
	}
	return s
}

// With returns the series for the given label values, creating it at zero
// on first use.
func (f *Family) With(labelValues ...string) *Series { return f.with(labelValues) }

// Func installs (or replaces) a callback-backed series: the value is read
// at scrape time. It is how live sources that keep their own counters —
// comm.Stats, ooc.IOStats, driver.Vars — are wired onto the registry
// without changing their internals.
func (f *Family) Func(fn func() float64, labelValues ...string) {
	if f.kind == KindHistogram {
		panic(fmt.Sprintf("obs: metric %q: Func on a histogram family", f.name))
	}
	s := f.with(labelValues)
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

// Attach installs (or replaces) an existing Histogram as a series of a
// histogram family, so subsystems that already maintain obs.Histograms
// (package serve) expose them without double bookkeeping.
func (f *Family) Attach(h *Histogram, labelValues ...string) {
	if f.kind != KindHistogram {
		panic(fmt.Sprintf("obs: metric %q: Attach on a %s family", f.name, f.kind))
	}
	s := f.with(labelValues)
	s.mu.Lock()
	s.hist = h
	s.mu.Unlock()
}

// Add increments a counter or gauge series by d. Counters reject negative
// deltas.
func (s *Series) Add(d float64) {
	if s.fam.kind == KindHistogram {
		panic(fmt.Sprintf("obs: metric %q: Add on a histogram series", s.fam.name))
	}
	if s.fam.kind == KindCounter && d < 0 {
		panic(fmt.Sprintf("obs: metric %q: counter decremented", s.fam.name))
	}
	s.mu.Lock()
	s.val += d
	s.mu.Unlock()
}

// Inc is Add(1).
func (s *Series) Inc() { s.Add(1) }

// Set sets a gauge series to v.
func (s *Series) Set(v float64) {
	if s.fam.kind != KindGauge {
		panic(fmt.Sprintf("obs: metric %q: Set on a %s series", s.fam.name, s.fam.kind))
	}
	s.mu.Lock()
	s.val = v
	s.mu.Unlock()
}

// Observe records v into a histogram series.
func (s *Series) Observe(v float64) {
	if s.fam.kind != KindHistogram {
		panic(fmt.Sprintf("obs: metric %q: Observe on a %s series", s.fam.name, s.fam.kind))
	}
	s.hist.Observe(v)
}

// Value returns the series' current scalar value (callback-backed series
// evaluate the callback; histograms return the observation count).
func (s *Series) Value() float64 {
	if s.fam.kind == KindHistogram {
		return float64(s.hist.Count())
	}
	s.mu.Lock()
	fn := s.fn
	v := s.val
	s.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return v
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// values, histograms as cumulative _bucket/_sum/_count triples. The output
// is deterministic for fixed metric values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*Family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]*Series, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range series {
			if err := s.write(w); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Series) write(w io.Writer) error {
	f := s.fam
	if f.kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelKeys, s.labelValues, "", ""), formatValue(s.Value()))
		return err
	}
	bounds, cum, count, sum := s.hist.cumulative()
	for i, b := range bounds {
		le := formatValue(b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labelKeys, s.labelValues, "le", le), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		f.name, labelString(f.labelKeys, s.labelValues, "le", "+Inf"), count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		f.name, labelString(f.labelKeys, s.labelValues, "", ""), formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		f.name, labelString(f.labelKeys, s.labelValues, "", ""), count)
	return err
}

// cumulative exports the histogram's buckets as cumulative counts per
// bound, for the Prometheus _bucket series.
func (h *Histogram) cumulative() (bounds []float64, cum []int64, count int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]float64(nil), h.bounds...)
	cum = make([]int64, len(h.bounds))
	var running int64
	for i := range h.bounds {
		running += h.counts[i]
		cum[i] = running
	}
	return bounds, cum, h.count, h.sum
}

// labelString renders {k="v",...}, appending one extra pair (for the
// histogram "le" label) when extraKey is non-empty. Returns "" with no
// labels.
func labelString(keys, values []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	// %g keeps integers exact and floats compact; Prometheus accepts both.
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Handler serves the registry in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
