package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
)

// LevelProgress is one rank's telemetry for one completed tree level of a
// build: how much frontier remains, and the level's deltas of the counters
// the paper's evaluation cares about (records routed, split evaluations,
// bytes on the wire, io-wait). Builders emit one record per level as the
// level completes, so an operator tailing the stream sees the build move.
type LevelProgress struct {
	Rank  int `json:"rank"`
	Level int `json:"level"`
	// Frontier is the number of large-node tasks remaining after this
	// level; SmallPending the small tasks deferred so far. Both are global
	// (identical on every rank of an SPMD build).
	Frontier     int `json:"frontier"`
	SmallPending int `json:"small_pending"`
	// RecordsRouted is this rank's level delta of records shipped to other
	// ranks; SplitEvals the large nodes whose split this level derived.
	RecordsRouted int64 `json:"records_routed"`
	SplitEvals    int64 `json:"split_evals"`
	// CommBytes and IOWaitSec are this rank's level deltas of bytes sent
	// and async-pipeline stall seconds.
	CommBytes int64   `json:"comm_bytes"`
	IOWaitSec float64 `json:"io_wait_s"`
	// WallSec and SimSec are the level's duration on this rank.
	WallSec float64 `json:"wall_s"`
	SimSec  float64 `json:"sim_s"`
	// Checkpoint is the level's checkpoint outcome: "ok", "failed"
	// (degraded mode: write skipped), or "" when checkpointing is off.
	Checkpoint string `json:"checkpoint,omitempty"`
}

// ProgressWriter emits LevelProgress records as JSON lines. It is safe for
// concurrent use (simulated builds run many ranks in one process) and safe
// as a nil receiver, which disables it.
type ProgressWriter struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer
	err error
}

// NewProgressWriter wraps w. If w is also an io.Closer, Close closes it.
func NewProgressWriter(w io.Writer) *ProgressWriter {
	pw := &ProgressWriter{w: w}
	if c, ok := w.(io.Closer); ok {
		pw.c = c
	}
	return pw
}

// CreateProgressFile creates path and returns a writer emitting to it.
func CreateProgressFile(path string) (*ProgressWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewProgressWriter(f), nil
}

// Write emits one record as a JSON line. Errors are sticky: the first one
// is remembered and returned by Close, so emitters on the build's hot path
// don't have to check every line.
func (p *ProgressWriter) Write(rec LevelProgress) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		p.err = err
		return
	}
	line = append(line, '\n')
	if _, err := p.w.Write(line); err != nil {
		p.err = err
	}
}

// Close flushes the underlying writer and returns the first error seen.
func (p *ProgressWriter) Close() error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		if err := p.c.Close(); err != nil && p.err == nil {
			p.err = err
		}
		p.c = nil
	}
	return p.err
}

// Emit returns a callback writing to p, shaped for pclouds.Config.Progress.
// A nil p returns nil (telemetry off).
func (p *ProgressWriter) Emit() func(LevelProgress) {
	if p == nil {
		return nil
	}
	return p.Write
}

// mergedLevel aggregates one level across ranks for the rank-0 report.
type mergedLevel struct {
	level, frontier, smallPending int
	records, splits, commBytes    int64
	ioWait                        float64
	maxWall, maxSim               float64
	ranks                         int
	// checkpoint outcomes seen across ranks ("ok"/"failed"), worst wins.
	ckptOK, ckptFailed int
}

// renderLevelTable renders gathered per-level records (all ranks) as the
// per-level section of the rank-0 merged report: one row per level with
// group-total routed records, split evaluations, comm bytes and io-wait,
// the slowest rank's wall/sim seconds, and the checkpoint outcome.
func renderLevelTable(all []LevelProgress) string {
	if len(all) == 0 {
		return ""
	}
	byLevel := make(map[int]*mergedLevel)
	var order []int
	for _, lp := range all {
		m, ok := byLevel[lp.Level]
		if !ok {
			m = &mergedLevel{level: lp.Level}
			byLevel[lp.Level] = m
			order = append(order, lp.Level)
		}
		m.ranks++
		// Frontier sizes are global and identical across ranks; keep one.
		m.frontier = lp.Frontier
		m.smallPending = lp.SmallPending
		m.records += lp.RecordsRouted
		m.splits += lp.SplitEvals
		m.commBytes += lp.CommBytes
		m.ioWait += lp.IOWaitSec
		if lp.WallSec > m.maxWall {
			m.maxWall = lp.WallSec
		}
		if lp.SimSec > m.maxSim {
			m.maxSim = lp.SimSec
		}
		switch lp.Checkpoint {
		case "ok":
			m.ckptOK++
		case "failed":
			m.ckptFailed++
		}
	}
	sort.Ints(order)

	var sb strings.Builder
	sb.WriteString("per-level progress (group totals; wall/sim are the slowest rank's seconds)\n")
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "level\tfrontier\tsmall\tsplit-evals\trouted\tcomm-bytes\tio-wait-s\twall-max\tsim-max\tckpt")
	for _, lv := range order {
		m := byLevel[lv]
		ckpt := "-"
		switch {
		case m.ckptFailed > 0:
			ckpt = fmt.Sprintf("failed(%d)", m.ckptFailed)
		case m.ckptOK > 0:
			ckpt = "ok"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%.6f\t%.6f\t%.6f\t%s\n",
			m.level, m.frontier, m.smallPending, m.splits, m.records,
			m.commBytes, m.ioWait, m.maxWall, m.maxSim, ckpt)
	}
	if err := tw.Flush(); err != nil {
		return ""
	}
	return sb.String()
}
