package obs

import (
	"math"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(ExpBounds(1, 2, 10)...) // 1,2,4,...,512
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i % 100))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.5)
	if p50 < 16 || p50 > 96 {
		t.Fatalf("p50 = %g, want within a bucket of the true median ~49.5", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
	if h.Quantile(1) > h.Max()+128 {
		t.Fatalf("p100 %g far above max %g", h.Quantile(1), h.Max())
	}
	if got := h.Max(); got != 99 {
		t.Fatalf("max = %g", got)
	}
	if m := h.Mean(); math.Abs(m-49.5) > 1 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := NewHistogram(1, 10)
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(1e9) // overflow bucket
	if got := h.Quantile(0.99); got != 1e9 {
		t.Fatalf("overflow quantile = %g, want the observed max", got)
	}
	snap := h.Snapshot()
	if snap["+inf"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestHistogramSnapshotCompact(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16)
	h.Observe(1.5)
	snap := h.Snapshot()
	if _, ok := snap["le_16"]; ok {
		t.Fatalf("empty trailing buckets exported: %v", snap)
	}
	if snap["le_2"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRateCounter(t *testing.T) {
	r := NewRateCounter(10)
	base := time.Unix(1_000_000, 0)
	now := base
	r.now = func() time.Time { return now }

	// 100 events/sec for 5 seconds.
	for s := 0; s < 5; s++ {
		now = base.Add(time.Duration(s) * time.Second)
		for i := 0; i < 100; i++ {
			r.Add(1)
		}
	}
	now = base.Add(5 * time.Second)
	if got := r.Rate(5); got != 100 {
		t.Fatalf("rate over 5s = %g, want 100", got)
	}
	// After a long quiet gap the stale slots must not be counted.
	now = base.Add(100 * time.Second)
	if got := r.Rate(5); got != 0 {
		t.Fatalf("rate after gap = %g, want 0", got)
	}
}
