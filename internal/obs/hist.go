package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a concurrency-safe fixed-bucket histogram. Bucket i counts
// observations v with v <= bounds[i]; a final implicit +Inf bucket catches
// the rest. Quantiles are estimated by linear interpolation inside the
// containing bucket, which is accurate enough for serving dashboards while
// keeping Observe O(log buckets) and allocation-free.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last is the overflow bucket
	count  int64
	sum    float64
	max    float64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// ExpBounds returns n ascending bounds starting at lo, each factor× the
// previous — the usual latency bucket layout.
func ExpBounds(lo, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := lo
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile estimates the q-quantile (q in [0,1]) by interpolating within
// the containing bucket. Values in the overflow bucket report the observed
// max. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			return h.max
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + frac*(hi-lo)
	}
	return h.max
}

// Snapshot returns bucket labels and counts for export (expvar/JSON).
// Only buckets at or below the highest non-empty one are included, so the
// export stays compact.
func (h *Histogram) Snapshot() map[string]int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	last := -1
	for i, c := range h.counts {
		if c > 0 {
			last = i
		}
	}
	out := make(map[string]int64, last+1)
	for i := 0; i <= last; i++ {
		var label string
		if i == len(h.bounds) {
			label = "+inf"
		} else {
			label = fmt.Sprintf("le_%g", h.bounds[i])
		}
		out[label] = h.counts[i]
	}
	return out
}

// RateCounter tracks an event rate with one-second resolution over a
// fixed ring of seconds. It answers "how many events in the last N
// seconds" without storing per-event state, so it is safe at any QPS.
// Add is lock-free; a handful of events can be misattributed when many
// goroutines cross a second boundary simultaneously, which is harmless
// for a rate gauge and keeps the serving hot path cheap.
type RateCounter struct {
	slots []rateSlot
	now   func() time.Time
}

type rateSlot struct {
	sec atomic.Int64 // which unix second this slot currently holds
	n   atomic.Int64
}

// NewRateCounter builds a counter covering a window of the given number of
// seconds (minimum 2).
func NewRateCounter(windowSeconds int) *RateCounter {
	if windowSeconds < 2 {
		windowSeconds = 2
	}
	return &RateCounter{
		slots: make([]rateSlot, windowSeconds),
		now:   time.Now,
	}
}

// Add records n events now.
func (r *RateCounter) Add(n int64) {
	sec := r.now().Unix()
	s := &r.slots[int(sec%int64(len(r.slots)))]
	if s.sec.Load() != sec {
		s.sec.Store(sec)
		s.n.Store(0)
	}
	s.n.Add(n)
}

// Rate returns events/second averaged over the last window seconds
// (capped at the ring size, excluding the current partial second when
// possible).
func (r *RateCounter) Rate(window int) float64 {
	if window < 1 {
		window = 1
	}
	if window > len(r.slots)-1 {
		window = len(r.slots) - 1
	}
	sec := r.now().Unix()
	var total int64
	for s := sec - int64(window); s < sec; s++ {
		slot := &r.slots[int(s%int64(len(r.slots)))]
		if slot.sec.Load() == s {
			total += slot.n.Load()
		}
	}
	return float64(total) / float64(window)
}
