package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"pclouds/internal/comm"
	"pclouds/internal/ooc"
)

// buildTestRecorders makes three ranks' recorders with two spans each, the
// comm and io sources advancing between start and end so every span carries
// nonzero deltas — rank r waits r*0.5s on the io pipeline.
func buildTestRecorders(t *testing.T) []*Recorder {
	t.Helper()
	recs := make([]*Recorder, 3)
	for r := range recs {
		rec := New(r)
		var cs comm.Stats
		var io ooc.IOStats
		rec.SetComm(func() comm.Stats { return cs })
		rec.AddIO("store", func() ooc.IOStats { return io })
		for _, name := range []string{"preprocess", "build"} {
			s := rec.Start(name)
			cs.BytesSent += int64(100 * (r + 1))
			cs.MsgsSent++
			io.ReadBytes += int64(1000 * (r + 1))
			io.WaitSec += 0.5 * float64(r)
			s.End()
		}
		recs[r] = rec
	}
	return recs
}

func decodeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return tr
}

func TestWriteChromeTraceMultiRank(t *testing.T) {
	recs := buildTestRecorders(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())

	// Each rank contributes its own pid/tid pair: two metadata events plus
	// one X event per span, all carrying pid == tid == rank.
	meta := make(map[int]map[string]bool) // rank -> metadata names seen
	spans := make(map[int][]chromeEvent)
	for _, ev := range tr.TraceEvents {
		if ev.Pid != ev.Tid {
			t.Fatalf("event %q: pid %d != tid %d", ev.Name, ev.Pid, ev.Tid)
		}
		switch ev.Ph {
		case "M":
			if meta[ev.Pid] == nil {
				meta[ev.Pid] = make(map[string]bool)
			}
			meta[ev.Pid][ev.Name] = true
			if want := fmt.Sprintf("rank %d", ev.Pid); ev.Args["name"] != want {
				t.Fatalf("metadata %q for pid %d names %v, want %q", ev.Name, ev.Pid, ev.Args["name"], want)
			}
		case "X":
			spans[ev.Pid] = append(spans[ev.Pid], ev)
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	for r := 0; r < 3; r++ {
		if !meta[r]["process_name"] || !meta[r]["thread_name"] {
			t.Fatalf("rank %d missing process/thread metadata: %v", r, meta[r])
		}
		if len(spans[r]) != 2 {
			t.Fatalf("rank %d has %d span events, want 2", r, len(spans[r]))
		}
		// Span events stay in start order within a rank.
		if spans[r][0].Name != "preprocess" || spans[r][1].Name != "build" {
			t.Fatalf("rank %d span order: %q then %q", r, spans[r][0].Name, spans[r][1].Name)
		}
	}

	// The io pipeline args ride on every span; rank 2's waits are nonzero.
	for r := 0; r < 3; r++ {
		for _, ev := range spans[r] {
			if _, ok := ev.Args["io_wait_s"]; !ok {
				t.Fatalf("rank %d span %q missing io_wait_s arg: %v", r, ev.Name, ev.Args)
			}
			if _, ok := ev.Args["comm_bytes"]; !ok {
				t.Fatalf("rank %d span %q missing comm_bytes arg", r, ev.Name)
			}
		}
	}
	if got := spans[2][0].Args["io_wait_s"].(float64); got != 1.0 {
		t.Fatalf("rank 2 first span io_wait_s = %v, want 1.0", got)
	}
	if got := spans[0][0].Args["io_wait_s"].(float64); got != 0 {
		t.Fatalf("rank 0 io_wait_s = %v, want 0", got)
	}
}

func TestWriteChromeTraceDeterministicOrder(t *testing.T) {
	recs := buildTestRecorders(t)
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, recs); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same recorders differ")
	}
	// Events are grouped by recorder order: all of rank 0's events precede
	// rank 1's, and so on — a merged multi-rank trace has a stable layout.
	tr := decodeTrace(t, a.Bytes())
	last := -1
	for _, ev := range tr.TraceEvents {
		if ev.Pid < last {
			t.Fatalf("rank %d event after rank %d: merge order unstable", ev.Pid, last)
		}
		last = ev.Pid
	}

	// Nil recorders are skipped without disturbing the others.
	var c bytes.Buffer
	if err := WriteChromeTrace(&c, []*Recorder{nil, recs[1]}); err != nil {
		t.Fatal(err)
	}
	tr = decodeTrace(t, c.Bytes())
	for _, ev := range tr.TraceEvents {
		if ev.Pid != 1 {
			t.Fatalf("nil recorder produced events for pid %d", ev.Pid)
		}
	}
}
