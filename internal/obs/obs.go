// Package obs is the per-rank observability layer: span-based phase tracing
// for the mixed-parallelism drivers, metric registries that attribute the
// communication and disk counters of packages comm and ooc to the enclosing
// phase, and exporters (per-rank JSON traces, a Chrome trace_event file, a
// rank-0 merged phase report) that reproduce the paper's phase-level
// accounting (Table 1, Figs. 1-3).
//
// A Recorder is owned by exactly one rank and driven from that rank's
// goroutine, mirroring the SPMD structure of the builders. Every method is
// safe on a nil *Recorder and a nil *Span — a disabled build passes nil and
// pays one pointer comparison per instrumentation point, so the hot paths
// are unaffected when tracing is off.
package obs

import (
	"sync"
	"time"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/ooc"
)

// Span is one timed phase of a build. Wall times are monotonic seconds
// since the recorder's creation; sim times come from the rank's simulated
// costmodel clock when one is attached. Comm and IO are the rank's traffic
// and disk deltas while the span was open, inclusive of child spans; the
// Self* accessors subtract the direct children to give exclusive values
// that sum without double counting.
type Span struct {
	Name string `json:"name"`
	// ID is an optional instance label (e.g. the tree-node id).
	ID    string `json:"id,omitempty"`
	Rank  int    `json:"rank"`
	Depth int    `json:"depth"`
	// Seq numbers spans in start order within the recorder.
	Seq int `json:"seq"`
	// StartWall/DurWall are seconds relative to the recorder's epoch.
	StartWall float64 `json:"start_wall"`
	DurWall   float64 `json:"dur_wall"`
	// StartSim/DurSim are simulated seconds (zero without a clock).
	StartSim float64 `json:"start_sim"`
	DurSim   float64 `json:"dur_sim"`
	// Comm is the inclusive communication delta while the span was open.
	Comm comm.Stats `json:"comm"`
	// IO is the inclusive disk delta, summed over all attached stores.
	IO ooc.IOStats `json:"io"`

	rec       *Recorder
	parent    *Span
	startT    time.Time
	commStart comm.Stats
	ioStart   ooc.IOStats
	// child* accumulate the direct children's inclusive values, so the
	// exclusive (self) metrics are inclusive minus children.
	childWall float64
	childSim  float64
	childComm comm.Stats
	childIO   ooc.IOStats
	ended     bool
}

// SelfWall is the span's exclusive wall time (children subtracted).
func (s *Span) SelfWall() float64 { return s.DurWall - s.childWall }

// SelfSim is the span's exclusive simulated time.
func (s *Span) SelfSim() float64 { return s.DurSim - s.childSim }

// SelfComm is the communication delta exclusive of child spans.
func (s *Span) SelfComm() comm.Stats { return s.Comm.Sub(s.childComm) }

// SelfIO is the disk delta exclusive of child spans. Its WaitSec component
// is the span's exclusive io-wait: time this phase actually stalled on the
// async I/O pipeline rather than computing.
func (s *Span) SelfIO() ooc.IOStats { return s.IO.Sub(s.childIO) }

// Recorder collects one rank's spans and counters. The zero value is not
// usable; create with New. A nil *Recorder is the disabled recorder: every
// method is a no-op and Start returns a nil *Span whose End is also a no-op.
type Recorder struct {
	mu       sync.Mutex
	rank     int
	epoch    time.Time
	clock    *costmodel.Clock
	commFn   func() comm.Stats
	ioFns    []func() ooc.IOStats
	ioNames  []string
	stack    []*Span
	done     []*Span
	nextSeq  int
	counters map[string]int64
}

// New creates an enabled recorder for one rank.
func New(rank int) *Recorder {
	return &Recorder{rank: rank, epoch: time.Now(), counters: make(map[string]int64)}
}

// Enabled reports whether the recorder collects anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// Rank returns the owning rank (0 for a nil recorder).
func (r *Recorder) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// SetClock attaches the rank's simulated clock; spans then carry simulated
// start times and durations alongside wall times.
func (r *Recorder) SetClock(c *costmodel.Clock) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.clock = c
	r.mu.Unlock()
}

// SetComm attaches the rank's communication-statistics source (typically
// Communicator.Stats); spans then carry per-collective traffic deltas.
func (r *Recorder) SetComm(fn func() comm.Stats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.commFn = fn
	r.mu.Unlock()
}

// AddIO registers a named store's statistics source (typically Store.Stats).
// Several stores may be attached; span deltas sum over all of them, and the
// per-store registry is exported in the JSON trace.
func (r *Recorder) AddIO(name string, fn func() ooc.IOStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ioNames = append(r.ioNames, name)
	r.ioFns = append(r.ioFns, fn)
	r.mu.Unlock()
}

// Count adds delta to a named free-form counter (e.g. records shipped).
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counters returns a copy of the free-form counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

func (r *Recorder) ioNow() ooc.IOStats {
	var io ooc.IOStats
	for _, fn := range r.ioFns {
		io.Add(fn())
	}
	return io
}

// Start opens a span nested under the currently open one. Returns nil on a
// nil recorder.
func (r *Recorder) Start(name string) *Span { return r.StartID(name, "") }

// StartID is Start with an instance label attached to the span.
func (r *Recorder) StartID(name, id string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	s := &Span{
		Name:      name,
		ID:        id,
		Rank:      r.rank,
		Depth:     len(r.stack),
		Seq:       r.nextSeq,
		StartWall: now.Sub(r.epoch).Seconds(),
		rec:       r,
		startT:    now,
	}
	r.nextSeq++
	if len(r.stack) > 0 {
		s.parent = r.stack[len(r.stack)-1]
	}
	if r.clock != nil {
		s.StartSim = r.clock.Time()
	}
	if r.commFn != nil {
		s.commStart = r.commFn()
	}
	s.ioStart = r.ioNow()
	r.stack = append(r.stack, s)
	return s
}

// End closes the span, computing its wall, simulated, communication and
// disk deltas. Spans must end in LIFO order; ending a span that is not the
// innermost open one also ends every span nested inside it. End on a nil or
// already-ended span is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	r := s.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	// Close any children left open (error paths), innermost first.
	for len(r.stack) > 0 {
		top := r.stack[len(r.stack)-1]
		top.finishLocked()
		r.stack = r.stack[:len(r.stack)-1]
		if top == s {
			return
		}
	}
}

// finishLocked stamps the span's deltas and records it; r.mu held.
func (s *Span) finishLocked() {
	r := s.rec
	s.ended = true
	s.DurWall = time.Since(s.startT).Seconds()
	if r.clock != nil {
		s.DurSim = r.clock.Time() - s.StartSim
	}
	if r.commFn != nil {
		s.Comm = r.commFn().Sub(s.commStart)
	}
	s.IO = r.ioNow().Sub(s.ioStart)
	if p := s.parent; p != nil {
		p.childWall += s.DurWall
		p.childSim += s.DurSim
		p.childComm.Add(s.Comm)
		p.childIO.Add(s.IO)
	}
	r.done = append(r.done, s)
}

// Spans returns the completed spans in start order. Open spans are not
// included; call End on the root span first.
func (r *Recorder) Spans() []*Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]*Span(nil), r.done...)
	// done is in end order; re-sort by start sequence.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
