package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestProgressWriterJSONLines(t *testing.T) {
	var sb strings.Builder
	pw := NewProgressWriter(&sb)
	emit := pw.Emit()
	emit(LevelProgress{Rank: 0, Level: 1, Frontier: 2, RecordsRouted: 10, CommBytes: 100, Checkpoint: "ok"})
	emit(LevelProgress{Rank: 1, Level: 1, Frontier: 2, RecordsRouted: 20, CommBytes: 50})
	if err := pw.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), sb.String())
	}
	var lp LevelProgress
	if err := json.Unmarshal([]byte(lines[0]), &lp); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if lp.Level != 1 || lp.RecordsRouted != 10 || lp.Checkpoint != "ok" {
		t.Fatalf("line 0 round trip: %+v", lp)
	}
	// The checkpoint field is omitted, not emitted empty, when unset.
	if strings.Contains(lines[1], "checkpoint") {
		t.Fatalf("line 1 carries an empty checkpoint field: %s", lines[1])
	}

	// A nil writer is a no-op with a nil callback.
	var nilPW *ProgressWriter
	if nilPW.Emit() != nil {
		t.Fatal("nil writer must yield a nil callback")
	}
	nilPW.Write(LevelProgress{})
	if err := nilPW.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRenderLevelTable(t *testing.T) {
	all := []LevelProgress{
		{Rank: 0, Level: 1, Frontier: 2, RecordsRouted: 10, SplitEvals: 1, CommBytes: 100, WallSec: 0.5, Checkpoint: "ok"},
		{Rank: 1, Level: 1, Frontier: 2, RecordsRouted: 30, SplitEvals: 1, CommBytes: 200, WallSec: 0.75, Checkpoint: "ok"},
		{Rank: 0, Level: 2, Frontier: 0, SmallPending: 3, RecordsRouted: 5, CommBytes: 10, WallSec: 0.1, Checkpoint: "failed"},
		{Rank: 1, Level: 2, Frontier: 0, SmallPending: 3, RecordsRouted: 5, CommBytes: 10, WallSec: 0.2, Checkpoint: "ok"},
	}
	tbl := renderLevelTable(all)
	if tbl == "" {
		t.Fatal("empty table for nonempty records")
	}
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	// Banner + header + one row per level.
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), tbl)
	}
	row1 := strings.Fields(lines[2])
	// level frontier small split-evals routed comm-bytes ...
	if row1[0] != "1" || row1[1] != "2" || row1[3] != "2" || row1[4] != "40" || row1[5] != "300" {
		t.Fatalf("level 1 row aggregates wrong: %v", row1)
	}
	// Wall is the slowest rank's, not the sum.
	if !strings.Contains(lines[2], "0.750000") {
		t.Fatalf("level 1 row missing max wall 0.75: %s", lines[2])
	}
	// One failed rank marks the level failed.
	if !strings.Contains(lines[3], "failed(1)") {
		t.Fatalf("level 2 row must show failed(1): %s", lines[3])
	}
	if renderLevelTable(nil) != "" {
		t.Fatal("nil records must render nothing")
	}
}
