package obs

import (
	"net/http/httptest"
	"strings"
	"testing"

	"pclouds/internal/comm"
	"pclouds/internal/ooc"
)

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_events_total", "Events by kind.", "kind")
	c.With("good").Add(3)
	c.With("bad").Inc()
	g := reg.Gauge("test_depth", "Current depth.")
	g.With().Set(7.5)
	h := reg.HistogramVec("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.With().Observe(0.05)
	h.With().Observe(0.5)
	h.With().Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_events_total counter",
		`test_events_total{kind="bad"} 1`,
		`test_events_total{kind="good"} 3`,
		"# TYPE test_depth gauge",
		"test_depth 7.5",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name, series by label values: deterministic output.
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("exposition is not deterministic")
	}
	if strings.Index(out, "test_depth") > strings.Index(out, "test_events_total") {
		t.Error("families not sorted by name")
	}
}

func TestRegistryIdempotentAndFunc(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("test_total", "", "k")
	b := reg.Counter("test_total", "", "k")
	if a != b {
		t.Error("re-registration returned a different family")
	}
	v := 1.0
	a.Func(func() float64 { return v }, "live")
	v = 42
	if got := a.With("live").Value(); got != 42 {
		t.Errorf("func series read %v, want 42", got)
	}
	// Replacing a func series keeps one series, latest callback wins.
	a.Func(func() float64 { return 7 }, "live")
	if got := a.With("live").Value(); got != 7 {
		t.Errorf("replaced func series read %v, want 7", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	reg.Gauge("test_total", "", "k")
}

func TestRegistryLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("test_esc", "", "path").With(`a"b\c` + "\n").Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `test_esc{path="a\"b\\c\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing from:\n%s", want, b.String())
	}
}

func TestRegisterCommAndIOStats(t *testing.T) {
	reg := NewRegistry()
	var cs comm.Stats
	cs.RecordSend(comm.TagUser, 128)
	cs.RecordRecv(comm.Tag(5), 256, 0.25) // a reserved collective tag
	cs.GenerationRejects = 3
	cs.PeerDowns = 1
	RegisterCommStats(reg, func() comm.Stats { return cs })

	io := ooc.IOStats{ReadOps: 2, ReadBytes: 4096, WriteOps: 1, WriteBytes: 512, WaitSec: 0.125}
	RegisterIOStats(reg, "store", func() ooc.IOStats { return io })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pclouds_comm_bytes_total{dir="sent"} 128`,
		`pclouds_comm_bytes_total{dir="recv"} 256`,
		"pclouds_comm_wait_seconds_total 0.25",
		"pclouds_comm_generation_rejects_total 3",
		"pclouds_comm_peer_downs_total 1",
		`pclouds_comm_op_bytes_total{op="p2p",dir="sent"} 128`,
		`pclouds_io_bytes_total{store="store",dir="read"} 4096`,
		`pclouds_io_wait_seconds_total{store="store"} 0.125`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_hits_total", "").With().Inc()
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "test_hits_total 1") {
		t.Errorf("handler body:\n%s", rr.Body.String())
	}
}
