package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"pclouds/internal/comm"
	"pclouds/internal/ooc"
)

// PhaseTotal aggregates every span of one name at one rank. Wall/Sim are
// inclusive of nested phases; WallSelf/SimSelf and the Comm/IO deltas are
// exclusive, so summing them across phases never double-counts and the
// totals reconcile with the rank's comm.Stats and ooc.IOStats.
type PhaseTotal struct {
	Name     string      `json:"name"`
	Count    int64       `json:"count"`
	Wall     float64     `json:"wall"`
	WallSelf float64     `json:"wall_self"`
	Sim      float64     `json:"sim"`
	SimSelf  float64     `json:"sim_self"`
	Comm     comm.Stats  `json:"comm"`
	IO       ooc.IOStats `json:"io"`
	// firstSeq orders phases by first appearance, which is identical on
	// every rank of an SPMD build.
	FirstSeq int `json:"first_seq"`
}

// Summary aggregates the recorder's completed spans by phase name, ordered
// by first appearance. Returns nil on a nil recorder.
func (r *Recorder) Summary() []PhaseTotal {
	if r == nil {
		return nil
	}
	byName := make(map[string]*PhaseTotal)
	var order []string
	for _, s := range r.Spans() {
		pt, ok := byName[s.Name]
		if !ok {
			pt = &PhaseTotal{Name: s.Name, FirstSeq: s.Seq}
			byName[s.Name] = pt
			order = append(order, s.Name)
		}
		pt.Count++
		pt.Wall += s.DurWall
		pt.WallSelf += s.SelfWall()
		pt.Sim += s.DurSim
		pt.SimSelf += s.SelfSim()
		pt.Comm.Add(s.SelfComm())
		pt.IO.Add(s.SelfIO())
	}
	out := make([]PhaseTotal, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// mergedPhase is one phase's cross-rank aggregate in the rank-0 report.
type mergedPhase struct {
	name                      string
	firstSeq                  int
	count                     int64
	minWall, maxWall, sumWall float64
	minSim, maxSim, sumSim    float64
	ranks                     int
	comm                      comm.Stats
	io                        ooc.IOStats
	waitSec                   float64
	ioWait                    float64
}

// rankReport is the per-rank payload of the merged-report gather: the
// phase summary plus the free-form counters and per-level progress records
// that are folded into the rank-0 report.
type rankReport struct {
	Phases   []PhaseTotal     `json:"phases"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Levels   []LevelProgress  `json:"levels,omitempty"`
}

// MergedReport gathers every rank's phase summary at rank 0 (one Gather on
// the group) and renders the cross-rank table the paper's evaluation is
// built from: per phase, the max/min/avg exclusive wall and simulated
// seconds across ranks, plus group-total communication, blocked-wait and
// disk volumes. Every rank of the group must call it at the same point;
// ranks other than 0 return "". Phases are ordered by first appearance (an
// SPMD build starts phases in the same order everywhere), so the report is
// deterministic up to the measured numbers.
func MergedReport(c comm.Communicator, r *Recorder) (string, error) {
	return MergedReportWith(c, r, nil)
}

// MergedReportWith is MergedReport plus per-level build telemetry: each
// rank contributes its LevelProgress records (nil when the build tracked
// none) in the same single gather, and the rank-0 report gains a per-level
// table and a line summing the recorders' free-form counters across ranks.
func MergedReportWith(c comm.Communicator, r *Recorder, levels []LevelProgress) (string, error) {
	payload, err := json.Marshal(rankReport{Phases: r.Summary(), Counters: r.Counters(), Levels: levels})
	if err != nil {
		return "", fmt.Errorf("obs: encoding phase summary: %w", err)
	}
	parts, err := comm.Gather(c, 0, payload)
	if err != nil {
		return "", fmt.Errorf("obs: gathering phase summaries: %w", err)
	}
	if c.Rank() != 0 {
		return "", nil
	}
	merged := make(map[string]*mergedPhase)
	var order []string
	counters := make(map[string]int64)
	var allLevels []LevelProgress
	for _, raw := range parts {
		var rr rankReport
		if err := json.Unmarshal(raw, &rr); err != nil {
			return "", fmt.Errorf("obs: decoding phase summary: %w", err)
		}
		for name, v := range rr.Counters {
			counters[name] += v
		}
		allLevels = append(allLevels, rr.Levels...)
		for _, pt := range rr.Phases {
			m, ok := merged[pt.Name]
			if !ok {
				m = &mergedPhase{name: pt.Name, firstSeq: pt.FirstSeq,
					minWall: pt.WallSelf, minSim: pt.SimSelf}
				merged[pt.Name] = m
				order = append(order, pt.Name)
			}
			m.count += pt.Count
			m.ranks++
			m.sumWall += pt.WallSelf
			m.sumSim += pt.SimSelf
			if pt.WallSelf < m.minWall {
				m.minWall = pt.WallSelf
			}
			if pt.WallSelf > m.maxWall {
				m.maxWall = pt.WallSelf
			}
			if pt.SimSelf < m.minSim {
				m.minSim = pt.SimSelf
			}
			if pt.SimSelf > m.maxSim {
				m.maxSim = pt.SimSelf
			}
			m.comm.Add(pt.Comm)
			m.io.Add(pt.IO)
			m.waitSec += pt.Comm.WaitSec
			m.ioWait += pt.IO.WaitSec
		}
	}
	// Order by first appearance; ties (phases some ranks never started, or
	// differing local orders) break by name for determinism.
	sort.SliceStable(order, func(i, j int) bool {
		a, b := merged[order[i]], merged[order[j]]
		if a.firstSeq != b.firstSeq {
			return a.firstSeq < b.firstSeq
		}
		return a.name < b.name
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "phase report (%d ranks; wall/sim are per-phase exclusive seconds)\n", c.Size())
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tspans\twall-max\twall-min\twall-avg\tsim-max\tsim-min\tsim-avg\tcomm-bytes\twait-s\tread-B\twrite-B\tio-wait-s")
	for _, name := range order {
		m := merged[name]
		fmt.Fprintf(tw, "%s\t%d\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%.6f\t%d\t%.6f\t%d\t%d\t%.6f\n",
			m.name, m.count,
			m.maxWall, m.minWall, m.sumWall/float64(m.ranks),
			m.maxSim, m.minSim, m.sumSim/float64(m.ranks),
			m.comm.BytesSent, m.waitSec, m.io.ReadBytes, m.io.WriteBytes, m.ioWait)
	}
	if err := tw.Flush(); err != nil {
		return "", err
	}
	if len(counters) > 0 {
		names := make([]string, 0, len(counters))
		for name := range counters {
			names = append(names, name)
		}
		sort.Strings(names)
		sb.WriteString("counters (all ranks summed):")
		for _, name := range names {
			fmt.Fprintf(&sb, " %s=%d", name, counters[name])
		}
		sb.WriteByte('\n')
	}
	if tbl := renderLevelTable(allLevels); tbl != "" {
		sb.WriteString(tbl)
	}
	return sb.String(), nil
}
