package obs

import (
	"pclouds/internal/comm"
	"pclouds/internal/ooc"
)

// RegisterCommStats wires a live comm.Stats source (typically
// Communicator.Stats, or a closure over an atomically repointed transport)
// onto reg as pclouds_comm_* series: aggregate message/byte/wait counters,
// the fault-tolerance counters (heartbeats, send retries, peer downs,
// generation-fencing rejects), and the per-collective breakdown. Values are
// read at scrape time, so the series track a build live. Registration is
// idempotent; the latest source wins.
func RegisterCommStats(reg *Registry, fn func() comm.Stats) {
	get := func(sel func(comm.Stats) float64) func() float64 {
		return func() float64 { return sel(fn()) }
	}

	msgs := reg.Counter("pclouds_comm_msgs_total", "Transport messages by direction.", "dir")
	msgs.Func(get(func(s comm.Stats) float64 { return float64(s.MsgsSent) }), "sent")
	msgs.Func(get(func(s comm.Stats) float64 { return float64(s.MsgsRecv) }), "recv")

	bytes := reg.Counter("pclouds_comm_bytes_total", "Transport payload bytes by direction (bytes on the wire).", "dir")
	bytes.Func(get(func(s comm.Stats) float64 { return float64(s.BytesSent) }), "sent")
	bytes.Func(get(func(s comm.Stats) float64 { return float64(s.BytesRecv) }), "recv")

	reg.Counter("pclouds_comm_wait_seconds_total", "Wall seconds blocked in Recv.").
		Func(get(func(s comm.Stats) float64 { return s.WaitSec }))

	hb := reg.Counter("pclouds_comm_heartbeats_total", "Failure-detector heartbeat frames by direction.", "dir")
	hb.Func(get(func(s comm.Stats) float64 { return float64(s.HeartbeatsSent) }), "sent")
	hb.Func(get(func(s comm.Stats) float64 { return float64(s.HeartbeatsRecv) }), "recv")

	reg.Counter("pclouds_comm_send_retries_total", "Transient send failures that were retried.").
		Func(get(func(s comm.Stats) float64 { return float64(s.SendRetries) }))
	reg.Counter("pclouds_comm_peer_downs_total", "Peers this rank declared down.").
		Func(get(func(s comm.Stats) float64 { return float64(s.PeerDowns) }))
	reg.Counter("pclouds_comm_generation_rejects_total", "Connections fenced off for carrying a stale build generation.").
		Func(get(func(s comm.Stats) float64 { return float64(s.GenerationRejects) }))

	opBytes := reg.Counter("pclouds_comm_op_bytes_total", "Payload bytes by collective primitive and direction.", "op", "dir")
	opWait := reg.Counter("pclouds_comm_op_wait_seconds_total", "Blocked-wait seconds by collective primitive.", "op")
	for cl := comm.OpClass(0); cl < comm.NumOpClasses; cl++ {
		cl := cl
		opBytes.Func(get(func(s comm.Stats) float64 { return float64(s.Ops[cl].BytesSent) }), cl.String(), "sent")
		opBytes.Func(get(func(s comm.Stats) float64 { return float64(s.Ops[cl].BytesRecv) }), cl.String(), "recv")
		opWait.Func(get(func(s comm.Stats) float64 { return s.Ops[cl].WaitSec }), cl.String())
	}
}

// RegisterIOStats wires a live ooc.IOStats source (typically Store.Stats)
// onto reg as pclouds_io_* series, labelled with the store name. The
// io-wait series is the async-pipeline stall accounting the phase reports
// use, exposed continuously.
func RegisterIOStats(reg *Registry, store string, fn func() ooc.IOStats) {
	get := func(sel func(ooc.IOStats) float64) func() float64 {
		return func() float64 { return sel(fn()) }
	}
	ops := reg.Counter("pclouds_io_ops_total", "Disk operations by store and direction.", "store", "dir")
	ops.Func(get(func(s ooc.IOStats) float64 { return float64(s.ReadOps) }), store, "read")
	ops.Func(get(func(s ooc.IOStats) float64 { return float64(s.WriteOps) }), store, "write")

	bytes := reg.Counter("pclouds_io_bytes_total", "Disk bytes by store and direction.", "store", "dir")
	bytes.Func(get(func(s ooc.IOStats) float64 { return float64(s.ReadBytes) }), store, "read")
	bytes.Func(get(func(s ooc.IOStats) float64 { return float64(s.WriteBytes) }), store, "write")

	reg.Counter("pclouds_io_wait_seconds_total", "Wall seconds stalled on the async I/O pipeline.", "store").
		Func(get(func(s ooc.IOStats) float64 { return s.WaitSec }), store)
}

// RegisterIntegrityStats wires a live ooc.IntegrityStats source (typically
// VerifyingBackend.Stats) onto reg as pclouds_integrity_* series, labelled
// with the store name. The corruption counter is the one to alert on: it
// only moves when a checksum failure exhausted the retry budget and
// surfaced to the build.
func RegisterIntegrityStats(reg *Registry, store string, fn func() ooc.IntegrityStats) {
	get := func(sel func(ooc.IntegrityStats) float64) func() float64 {
		return func() float64 { return sel(fn()) }
	}
	frames := reg.Counter("pclouds_integrity_frames_total", "Checksummed frames by store and direction.", "store", "dir")
	frames.Func(get(func(s ooc.IntegrityStats) float64 { return float64(s.FramesWritten) }), store, "write")
	frames.Func(get(func(s ooc.IntegrityStats) float64 { return float64(s.FramesRead) }), store, "read")

	reg.Counter("pclouds_integrity_retries_total", "Frame reads retried after an error or checksum mismatch.", "store").
		Func(get(func(s ooc.IntegrityStats) float64 { return float64(s.Retries) }), store)
	reg.Counter("pclouds_integrity_corruptions_total", "Checksum failures that exhausted retries and surfaced.", "store").
		Func(get(func(s ooc.IntegrityStats) float64 { return float64(s.Corruptions) }), store)
}
