package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/ooc"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Rank() != 0 {
		t.Fatal("nil recorder rank != 0")
	}
	r.SetClock(nil)
	r.SetComm(func() comm.Stats { return comm.Stats{} })
	r.AddIO("x", func() ooc.IOStats { return ooc.IOStats{} })
	r.Count("n", 1)
	s := r.Start("phase")
	if s != nil {
		t.Fatal("nil recorder returned a non-nil span")
	}
	s.End() // must not panic
	if r.Spans() != nil || r.Summary() != nil || r.Counters() != nil {
		t.Fatal("nil recorder returned data")
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	r := New(3)
	a := r.Start("a")
	b := r.Start("b")
	b.End()
	c := r.StartID("c", "n1")
	c.End()
	a.End()

	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	wantNames := []string{"a", "b", "c"}
	wantDepths := []int{0, 1, 1}
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Errorf("span %d name %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Depth != wantDepths[i] {
			t.Errorf("span %d depth %d, want %d", i, s.Depth, wantDepths[i])
		}
		if s.Seq != i {
			t.Errorf("span %d seq %d", i, s.Seq)
		}
		if s.Rank != 3 {
			t.Errorf("span %d rank %d, want 3", i, s.Rank)
		}
	}
	if spans[2].ID != "n1" {
		t.Errorf("span c id %q, want n1", spans[2].ID)
	}
	// Exclusive wall time of the parent is inclusive minus the children.
	got := spans[0].SelfWall()
	want := spans[0].DurWall - spans[1].DurWall - spans[2].DurWall
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("parent SelfWall %g, want %g", got, want)
	}
}

func TestEndClosesOpenChildren(t *testing.T) {
	r := New(0)
	a := r.Start("a")
	r.Start("b") // never ended explicitly (error path)
	r.Start("c")
	a.End()
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (children force-closed)", len(spans))
	}
	a.End() // double End is a no-op
	if len(r.Spans()) != 3 {
		t.Fatal("double End recorded extra spans")
	}
}

func TestCommAndIOAttribution(t *testing.T) {
	var cs comm.Stats
	var io ooc.IOStats
	r := New(0)
	r.SetComm(func() comm.Stats { return cs })
	r.AddIO("store", func() ooc.IOStats { return io })

	outer := r.Start("outer")
	cs.RecordSend(comm.TagUser, 100)
	io.ReadBytes += 10
	inner := r.Start("inner")
	cs.RecordSend(comm.TagUser, 30)
	io.WriteBytes += 7
	inner.End()
	cs.RecordSend(comm.TagUser, 5)
	outer.End()

	spans := r.Spans()
	o, in := spans[0], spans[1]
	if o.Comm.BytesSent != 135 {
		t.Errorf("outer inclusive bytes %d, want 135", o.Comm.BytesSent)
	}
	if in.Comm.BytesSent != 30 {
		t.Errorf("inner bytes %d, want 30", in.Comm.BytesSent)
	}
	if self := o.SelfComm().BytesSent; self != 105 {
		t.Errorf("outer exclusive bytes %d, want 105", self)
	}
	if o.IO.ReadBytes != 10 || o.IO.WriteBytes != 7 {
		t.Errorf("outer inclusive IO %+v", o.IO)
	}
	if self := o.SelfIO(); self.WriteBytes != 0 || self.ReadBytes != 10 {
		t.Errorf("outer exclusive IO %+v", self)
	}

	sum := r.Summary()
	if len(sum) != 2 || sum[0].Name != "outer" || sum[1].Name != "inner" {
		t.Fatalf("summary %+v", sum)
	}
	// Exclusive values sum back to the total traffic.
	total := sum[0].Comm.BytesSent + sum[1].Comm.BytesSent
	if total != cs.BytesSent {
		t.Errorf("summary bytes %d, want %d", total, cs.BytesSent)
	}
}

func TestSimTimeFromClock(t *testing.T) {
	clock := costmodel.NewClock()
	r := New(0)
	r.SetClock(clock)
	s := r.Start("phase")
	clock.Advance(1.5)
	s.End()
	if got := r.Spans()[0].DurSim; got != 1.5 {
		t.Errorf("DurSim %g, want 1.5", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New(2)
	r.Count("records", 42)
	s := r.Start("phase")
	s.End()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		Rank     int              `json:"rank"`
		Spans    []Span           `json:"spans"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if tf.Rank != 2 || len(tf.Spans) != 1 || tf.Counters["records"] != 42 {
		t.Fatalf("round-trip %+v", tf)
	}
}

func TestChromeTrace(t *testing.T) {
	recs := []*Recorder{New(0), New(1), nil}
	for _, r := range recs[:2] {
		s := r.Start("build")
		r.Start("phase").End()
		s.End()
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	tids := map[int]bool{}
	meta, complete := 0, 0
	for _, e := range tr.TraceEvents {
		tids[e.Tid] = true
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		default:
			t.Errorf("unexpected event phase %q", e.Ph)
		}
	}
	// Two ranks, each announcing process_name and thread_name.
	if meta != 4 || complete != 4 {
		t.Errorf("got %d metadata / %d complete events, want 4/4", meta, complete)
	}
	if !tids[0] || !tids[1] || len(tids) != 2 {
		t.Errorf("tids %v, want {0,1}", tids)
	}
}

// TestMergedReportGroup runs an SPMD phase pattern over a 4-rank channel
// mesh and checks that rank 0's merged report covers every phase in start
// order with the group's traffic attributed, and that the other ranks
// return an empty report.
func TestMergedReportGroup(t *testing.T) {
	const p = 4
	reports := make([]string, p)
	err := comm.Run(p, costmodel.Zero(), func(c *comm.ChannelComm) error {
		r := New(c.Rank())
		r.SetClock(c.Clock())
		r.SetComm(c.Stats)
		build := r.Start("build")

		alpha := r.Start("alpha")
		if _, err := comm.AllReduceInt64(c, []int64{1}, func(a, b int64) int64 { return a + b }); err != nil {
			return err
		}
		alpha.End()

		beta := r.Start("beta")
		if _, err := comm.AllGather(c, []byte{byte(c.Rank())}); err != nil {
			return err
		}
		beta.End()

		build.End()
		rep, err := MergedReport(c, r)
		if err != nil {
			return err
		}
		reports[c.Rank()] = rep
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rk := 1; rk < p; rk++ {
		if reports[rk] != "" {
			t.Errorf("rank %d returned a non-empty report", rk)
		}
	}
	rep := reports[0]
	iBuild := strings.Index(rep, "build")
	iAlpha := strings.Index(rep, "alpha")
	iBeta := strings.Index(rep, "beta")
	if iBuild < 0 || iAlpha < 0 || iBeta < 0 {
		t.Fatalf("report missing phases:\n%s", rep)
	}
	if !(iBuild < iAlpha && iAlpha < iBeta) {
		t.Errorf("phases out of start order:\n%s", rep)
	}
	if !strings.Contains(rep, "4 ranks") {
		t.Errorf("report missing rank count:\n%s", rep)
	}
}
