package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile written to path and returns the stop
// function. Use with defer from a binary's main:
//
//	stop, err := obs.StartCPUProfile(*cpuprofile)
//	defer stop()
func StartCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile of the live heap to path
// (after a GC, so the numbers reflect reachable memory).
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
