package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// metricsOnce guards the one-time /metrics registration on the default mux
// (ServeDebug may be called more than once, e.g. by tests binding ":0").
var metricsOnce sync.Once

// ServeDebug starts an HTTP server on addr exposing the standard runtime
// endpoints: /debug/pprof/* (CPU, heap, goroutine, block profiles),
// /debug/vars (expvar, including everything published via Publish), and
// /metrics (the DefaultRegistry in Prometheus text format). It returns the
// bound address (useful with ":0") once the listener is up; the server
// itself runs in a background goroutine for the life of the process.
func ServeDebug(addr string) (string, error) {
	metricsOnce.Do(func() {
		http.Handle("/metrics", DefaultRegistry().Handler())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug endpoint
	return ln.Addr().String(), nil
}

var (
	publishMu  sync.Mutex
	publishSet = map[string]bool{}
)

// Publish exposes fn's value under name at /debug/vars. Unlike
// expvar.Publish it is idempotent: re-publishing a name replaces nothing
// and does not panic, so per-build republishing in long-lived processes and
// tests is safe.
func Publish(name string, fn func() any) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if publishSet[name] {
		return
	}
	publishSet[name] = true
	expvar.Publish(name, expvar.Func(fn))
}
