// Quickstart: generate synthetic data, train a CLOUDS decision tree, prune
// it with MDL, and classify held-out records — the five-minute tour of the
// library's public surface.
package main

import (
	"fmt"
	"log"
	"os"

	"pclouds/internal/clouds"
	"pclouds/internal/datagen"
	"pclouds/internal/mdl"
	"pclouds/internal/metrics"
)

func main() {
	// 1. Synthesise a training and a test set with the Agrawal generator
	//    (function 2: class depends on age bands and salary ranges).
	gen, err := datagen.New(datagen.Config{Function: 2, Seed: 42, Noise: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	train := gen.Generate(20000)
	testGen, _ := datagen.New(datagen.Config{Function: 2, Seed: 43})
	test := testGen.Generate(5000)

	// 2. Train with the SSE method (sampled splitting points + alive
	//    interval estimation — one to two passes over the data per node).
	cfg := clouds.Config{
		Method:     clouds.SSE,
		QRoot:      200, // intervals per numeric attribute at the root
		SmallNodeQ: 10,  // switch to the exact direct method below this
		Seed:       1,
	}
	tree, stats, err := clouds.BuildInCore(cfg, train, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %s\n", metrics.Summarize(tree))
	fmt.Printf("record reads: %d (%.1f passes over the data)\n",
		stats.RecordReads, float64(stats.RecordReads)/float64(train.Len()))
	fmt.Printf("SSE survival ratio: %.3f\n", stats.SurvivalRatio())

	// 3. Prune with MDL: with 5% label noise the raw tree overfits.
	pruned, pst := mdl.Prune(tree)
	fmt.Printf("pruned: %d -> %d nodes\n", pst.NodesBefore, pst.NodesAfter)

	// 4. Evaluate.
	fmt.Printf("test accuracy (raw):    %.4f\n", metrics.Accuracy(tree, test))
	fmt.Printf("test accuracy (pruned): %.4f\n", metrics.Accuracy(pruned, test))

	// 5. Classify one record and show the tree's top levels.
	rec := test.Records[0]
	fmt.Printf("record 0 -> class %d (actual %d)\n", pruned.Classify(rec), rec.Class)
	fmt.Println("tree (top):")
	pruned.Dump(os.Stdout)
}
