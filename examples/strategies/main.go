// Strategies example: the generic parallel out-of-core divide-and-conquer
// framework (Section 3 of the paper) applied to a non-classifier problem —
// building a balanced range-partition tree over one million keys — under
// all four parallelisation strategies. The leaf partitions are identical
// across strategies; the communication structure, data movement, and
// simulated time differ, which is the point of the comparison.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/dnc"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
)

// rangeTree splits tasks at the median of a 256-bin key histogram until
// partitions hold at most leafN keys — a parallel out-of-core quantile
// partitioner.
type rangeTree struct {
	leafN int64
	bins  int
}

func (m *rangeTree) SummaryLen(dnc.Task) int { return m.bins }

func (m *rangeTree) Accumulate(t dnc.Task, sum []int64, rec *record.Record) {
	b := int(rec.Num[0] * float64(m.bins))
	if b < 0 {
		b = 0
	}
	if b >= m.bins {
		b = m.bins - 1
	}
	sum[b]++
}

func (m *rangeTree) Decide(t dnc.Task, global []int64) (dnc.Decision, error) {
	var n int64
	lo, hi := -1, -1
	for b, c := range global {
		n += c
		if c > 0 {
			if lo < 0 {
				lo = b
			}
			hi = b
		}
	}
	result := make([]byte, 8)
	binary.LittleEndian.PutUint64(result, uint64(n))
	if n <= m.leafN || lo == hi {
		return dnc.Decision{Leaf: true, Result: result}, nil
	}
	var cum int64
	for b := lo; b < hi; b++ {
		cum += global[b]
		if cum >= (n+1)/2 || b == hi-1 {
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, uint64(b))
			return dnc.Decision{Payload: payload}, nil
		}
	}
	return dnc.Decision{}, fmt.Errorf("median bin not found")
}

func (m *rangeTree) Route(t dnc.Task, payload []byte, rec *record.Record) int {
	b := int(binary.LittleEndian.Uint64(payload))
	if int(rec.Num[0]*float64(m.bins)) <= b {
		return 0
	}
	return 1
}

func main() {
	const (
		n     = 1_000_000
		procs = 4
	)
	schema := record.MustSchema([]record.Attribute{{Name: "key", Kind: record.Numeric}}, 2)
	rng := rand.New(rand.NewSource(1))
	keys := make([]record.Record, n)
	for i := range keys {
		keys[i] = record.Record{Num: []float64{rng.Float64()}, Class: 0}
	}
	params := costmodel.Default()

	fmt.Printf("range-partitioning %d keys on %d simulated processors\n\n", n, procs)
	fmt.Printf("%-16s %-12s %-14s %-14s %-12s %-8s\n",
		"strategy", "sim time(s)", "record reads", "redistributed", "collectives", "leaves")

	var reference map[string]int64
	for _, s := range []dnc.Strategy{dnc.DataParallel, dnc.Concatenated, dnc.TaskParallel, dnc.TaskParallelCI, dnc.Mixed} {
		comms := comm.NewGroup(procs, params)
		results := make([]*dnc.Result, procs)
		errs := make([]error, procs)
		var wg sync.WaitGroup
		for r := 0; r < procs; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				store := ooc.NewMemStore(schema, params, comms[r].Clock())
				w, err := store.CreateWriter("task-keys")
				if err != nil {
					errs[r] = err
					return
				}
				for i := r; i < len(keys); i += procs {
					if err := w.Write(keys[i]); err != nil {
						errs[r] = err
						return
					}
				}
				if err := w.Close(); err != nil {
					errs[r] = err
					return
				}
				comms[r].Clock().Reset()
				e := &dnc.Engine{
					C: comms[r], Store: store,
					Mem:     ooc.NewMemLimit(1 << 21),
					SwitchN: 20000,
					Params:  params,
				}
				results[r], errs[r] = e.Run(&rangeTree{leafN: 4096, bins: 256}, "keys", s)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				log.Fatalf("strategy %v rank %d: %v", s, r, err)
			}
		}
		res := results[0]
		fmt.Printf("%-16s %-12.3f %-14d %-14d %-12d %-8d\n",
			s, comm.MaxClock(comms), res.Stats.RecordReads, res.Stats.Redistributed,
			res.Stats.Collectives, len(res.Leaves))

		// Verify: leaf partitions identical across strategies, covering all
		// keys exactly once.
		counts := map[string]int64{}
		var total int64
		for id, blob := range res.Leaves {
			if len(blob) == 8 {
				c := int64(binary.LittleEndian.Uint64(blob))
				counts[id] = c
				total += c
			}
		}
		if total != n {
			log.Fatalf("strategy %v: leaves cover %d of %d keys", s, total, n)
		}
		if reference == nil {
			reference = counts
		} else if !equalMaps(reference, counts) {
			log.Fatalf("strategy %v produced a different partition", s)
		}
	}
	fmt.Println("\nall strategies produced the identical partition ✓")
	// Show the partition's balance.
	var sizes []int64
	for _, c := range reference {
		sizes = append(sizes, c)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	fmt.Printf("leaf sizes: min %d, median %d, max %d (%d leaves)\n",
		sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1], len(sizes))
}

func equalMaps(a, b map[string]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
