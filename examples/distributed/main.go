// Distributed example: a full pCLOUDS run over real TCP sockets on
// localhost — the same code path as running one cmd/pcloudsd process per
// machine, compressed into one binary that spawns every rank as a
// goroutine with its own port, on-disk store, and data partition. It then
// verifies the parallel tree is bit-identical to the sequential CLOUDS
// tree.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/ooc"
	"pclouds/internal/pclouds"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

const procs = 4

func main() {
	gen, err := datagen.New(datagen.Config{Function: 2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	train := gen.Generate(40000)
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 150, SmallNodeQ: 10, Seed: 1}
	sample := cfg.SampleFor(train)

	// Reserve one loopback port per rank.
	addrs := make([]string, procs)
	listeners := make([]net.Listener, procs)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range listeners {
		ln.Close()
	}

	dir, err := os.MkdirTemp("", "pclouds-dist-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("launching %d ranks over TCP (%v)\n", procs, addrs)
	trees := make([]*tree.Tree, procs)
	stats := make([]*pclouds.Stats, procs)
	errs := make([]error, procs)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < procs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = runRank(r, addrs, dir, cfg, train, sample, &trees[r], &stats[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}
	fmt.Printf("all ranks done in %v\n", time.Since(start))

	// Every rank must hold the identical tree, and it must equal the
	// sequential CLOUDS tree built from the same data and sample.
	for r := 1; r < procs; r++ {
		if !tree.Equal(trees[0], trees[r]) {
			log.Fatalf("rank %d disagrees with rank 0", r)
		}
	}
	seq, _, err := clouds.BuildInCore(cfg, train, sample)
	if err != nil {
		log.Fatal(err)
	}
	if !tree.Equal(trees[0], seq) {
		log.Fatal("distributed tree differs from sequential CLOUDS")
	}
	fmt.Println("distributed tree == sequential tree ✓")
	fmt.Printf("tree: %s\n", metrics.Summarize(trees[0]))
	fmt.Printf("rank 0 traffic: %s\n", stats[0].Comm)
	fmt.Printf("small tasks shipped to single processors: %d\n", stats[0].SmallTasks)
	fmt.Printf("training accuracy: %.4f\n", metrics.Accuracy(trees[0], train))
}

// runRank is what one cmd/pcloudsd process does: stage the partition,
// join the mesh, build.
func runRank(r int, addrs []string, dir string, cfg clouds.Config, train *record.Dataset, sample []record.Record, out **tree.Tree, st **pclouds.Stats) error {
	store, err := ooc.NewFileStore(train.Schema, filepath.Join(dir, fmt.Sprintf("rank%d", r)), costmodel.Zero(), nil)
	if err != nil {
		return err
	}
	w, err := store.CreateWriter("root")
	if err != nil {
		return err
	}
	for i := r; i < train.Len(); i += len(addrs) {
		if err := w.Write(train.Records[i]); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	c, err := tcpcomm.Dial(tcpcomm.Config{Rank: r, Addrs: addrs, Params: costmodel.Zero(), DialTimeout: 15 * time.Second})
	if err != nil {
		return err
	}
	defer c.Close()
	t, s, err := pclouds.Build(pclouds.Config{Clouds: cfg}, c, store, "root", sample)
	if err != nil {
		return err
	}
	*out, *st = t, s
	return nil
}
