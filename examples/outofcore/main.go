// Out-of-core example: build a decision tree over a disk-resident dataset
// far larger than the allowed memory budget. The builder streams the data
// from per-node files, partitions them physically at each split, and only
// loads a node once it fits the budget — the CLOUDS recipe for datasets
// that do not fit in RAM.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"pclouds/internal/clouds"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
)

func main() {
	const nRecords = 200000
	dir, err := os.MkdirTemp("", "pclouds-ooc-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Stage the training data on disk (normally produced by
	//    cmd/datagen; here generated in a streaming fashion).
	gen, err := datagen.New(datagen.Config{Function: 5, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	schema := gen.Schema()
	store, err := ooc.NewFileStore(schema, filepath.Join(dir, "store"), costmodel.Default(), costmodel.NewClock())
	if err != nil {
		log.Fatal(err)
	}
	// Overlap disk I/O with computation: scans are fed by a background
	// read-ahead prefetcher and writes drain behind the build. Simulated
	// costs and page counts are identical to the synchronous default.
	store.SetPipeline(ooc.Pipeline{Enabled: true})
	w, err := store.CreateWriter("train")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nRecords; i++ {
		if err := w.Write(gen.Next()); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	datasetBytes := int64(nRecords) * int64(schema.RecordBytes())
	fmt.Printf("staged %d records (%.1f MB) on disk\n", nRecords, float64(datasetBytes)/1e6)

	// 2. A memory budget of 1/32 of the dataset: the top five levels of the
	//    tree must be built by streaming.
	mem := ooc.NewMemLimit(datasetBytes / 32)
	fmt.Printf("memory budget: %.2f MB\n", float64(mem.Limit())/1e6)

	// 3. The pre-drawn sample for interval construction is the only whole-
	//    dataset structure kept in memory.
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 300, SmallNodeQ: 10, Seed: 1, MaxDepth: 18}
	sampleRecs, err := store.ReadAll("train")
	if err != nil {
		log.Fatal(err)
	}
	// Draw the sample via the in-memory dataset helper, then drop the full
	// copy before building (the build itself must respect the budget).
	sample := cfg.SampleFor(datasetFrom(schema, sampleRecs))
	sampleRecs = nil

	tree, stats, err := clouds.BuildOutOfCore(cfg, store, "train", sample, mem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built: %s\n", metrics.Summarize(tree))
	io := store.Stats()
	fmt.Printf("disk traffic: %s\n", io)
	fmt.Printf("  = %.1f dataset-sized sweeps of reads\n", float64(io.ReadBytes)/float64(datasetBytes))
	fmt.Printf("record touches: %d (%.1f passes)\n", stats.RecordReads, float64(stats.RecordReads)/float64(nRecords))
	fmt.Printf("simulated disk+CPU time: %s\n", store.Clock())

	// 4. Evaluate on fresh data.
	testGen, _ := datagen.New(datagen.Config{Function: 5, Seed: 8})
	test := testGen.Generate(20000)
	fmt.Printf("held-out accuracy: %.4f\n", metrics.Accuracy(tree, test))
}

// datasetFrom wraps records in a Dataset for sampling.
func datasetFrom(schema *record.Schema, recs []record.Record) *record.Dataset {
	return &record.Dataset{Schema: schema, Records: recs}
}
