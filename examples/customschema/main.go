// Custom-schema example: the classifier is schema-generic, not tied to the
// paper's synthetic generator. This example defines a "network flow"
// schema, synthesises labelled flows with an embedded rule plus noise,
// round-trips them through CSV (the interchange format for real data),
// cross-validates a CLOUDS tree, and emits the final model as Graphviz dot.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"

	"pclouds/internal/clouds"
	"pclouds/internal/mdl"
	"pclouds/internal/metrics"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

func main() {
	// 1. A custom schema: four numeric and two categorical attributes,
	//    three classes (benign / suspicious / malicious).
	schema := record.MustSchema([]record.Attribute{
		{Name: "duration_s", Kind: record.Numeric},
		{Name: "bytes_out", Kind: record.Numeric},
		{Name: "pkts_per_s", Kind: record.Numeric},
		{Name: "entropy", Kind: record.Numeric},
		{Name: "proto", Kind: record.Categorical, Cardinality: 3},     // tcp/udp/icmp
		{Name: "dst_class", Kind: record.Categorical, Cardinality: 4}, // internal/dmz/external/cdn
	}, 3)

	// 2. Synthesise flows with an embedded labelling rule + 3% noise.
	rng := rand.New(rand.NewSource(7))
	data := record.NewDataset(schema)
	for i := 0; i < 30000; i++ {
		duration := rng.ExpFloat64() * 30
		bytesOut := rng.ExpFloat64() * 1e6
		pps := rng.ExpFloat64() * 200
		entropy := rng.Float64() * 8
		proto := int32(rng.Intn(3))
		dst := int32(rng.Intn(4))

		var class int32 // benign
		switch {
		case entropy > 7 && bytesOut > 2e6 && dst == 2: // exfil-like
			class = 2
		case pps > 400 && proto == 2: // scan-like
			class = 2
		case entropy > 6.5 || (bytesOut > 1.5e6 && dst != 0):
			class = 1
		}
		if rng.Float64() < 0.03 {
			class = int32(rng.Intn(3))
		}
		data.Append(record.Record{
			Num:   []float64{duration, bytesOut, pps, entropy},
			Cat:   []int32{proto, dst},
			Class: class,
		})
	}

	// 3. Round-trip through CSV — the path real data would take in.
	var csv bytes.Buffer
	if err := data.WriteCSV(&csv); err != nil {
		log.Fatal(err)
	}
	csvBytes := csv.Len()
	loaded, err := record.ReadCSV(schema, &csv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CSV round-trip: %d flows, %d bytes of CSV\n", loaded.Len(), csvBytes)

	// 4. Cross-validate a pruned CLOUDS tree.
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 150, SmallNodeQ: 10, Seed: 1, MaxDepth: 12}
	cv, err := metrics.CrossValidate(loaded, 5, 11, func(train *record.Dataset) (*tree.Tree, error) {
		t, _, err := clouds.BuildInCore(cfg, train, nil)
		if err != nil {
			return nil, err
		}
		pruned, _ := mdl.Prune(t)
		return pruned, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cv)

	// 5. Train the final model on everything and emit Graphviz dot.
	final, stats, err := clouds.BuildInCore(cfg, loaded, nil)
	if err != nil {
		log.Fatal(err)
	}
	pruned, pst := mdl.Prune(final)
	fmt.Printf("final model: %s (pruned from %d nodes; %.1f passes over the data)\n",
		metrics.Summarize(pruned), pst.NodesBefore, float64(stats.RecordReads)/float64(loaded.Len()))
	fmt.Println("\nGraphviz (pipe into `dot -Tsvg`):")
	if err := pruned.WriteDot(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
