module pclouds

go 1.22
