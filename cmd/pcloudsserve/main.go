// Command pcloudsserve serves classifications from persisted tree models.
//
// Serving (default mode): point it at a model file or a directory of
// models written by pclouds -save-model; the newest file becomes the
// active version and the registry hot-swaps newer models with zero
// downtime (on a poll interval and on SIGHUP):
//
//	pcloudsserve -models ./models -addr :8391
//
// Endpoints: POST /v1/classify (JSON single or batch), POST
// /v1/classify.bin (binary feature rows), GET /healthz, /readyz,
// /v1/model, /v1/stats. When the request queue fills the server sheds
// load with 503 + Retry-After instead of queueing without bound; SIGINT/
// SIGTERM drain gracefully.
//
// Robustness: a model file that fails to load is quarantined (renamed
// aside with a .quarantined suffix) and the next-best candidate is tried;
// SIGUSR2 — or POST /v1/rollback on -debug-addr — rolls back to the
// last-known-good model and pins the displaced version out until a newer
// model appears.
//
// Load harness: -selftest trains a small tree in-process, serves it, and
// drives the engine at full speed, printing a throughput/latency summary;
// -loadgen URL replays the same traffic against a running server:
//
//	pcloudsserve -selftest
//	pcloudsserve -loadgen http://localhost:8391 -qps 50000 -duration 10s -bin
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/serve"
)

func main() {
	var (
		models    = flag.String("models", "", "model file or directory of models (newest file is served)")
		addr      = flag.String("addr", ":8391", "HTTP listen address")
		workers   = flag.Int("workers", 0, "batch workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 1024, "request queue bound; a full queue sheds with 503")
		maxBatch  = flag.Int("max-batch", 256, "max rows coalesced into one worker batch")
		maxRows   = flag.Int("max-rows", 16384, "max rows per request")
		poll      = flag.Duration("poll", 2*time.Second, "model hot-reload poll interval (0 disables; SIGHUP always reloads)")
		reqTO     = flag.Duration("request-timeout", 10*time.Second, "per-request engine timeout")
		drainTO   = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain window")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")

		selftest    = flag.Bool("selftest", false, "train a small tree in-process and run the load harness against it")
		loadgen     = flag.String("loadgen", "", "run the load harness against this base URL instead of serving")
		qps         = flag.Float64("qps", 0, "load harness target requests/sec (0 = unthrottled)")
		duration    = flag.Duration("duration", 3*time.Second, "load harness run length")
		concurrency = flag.Int("concurrency", 8, "load harness client workers")
		batchRows   = flag.Int("batch-rows", 1, "load harness rows per request")
		records     = flag.Int("records", 8192, "load harness distinct replayed records")
		useBin      = flag.Bool("bin", false, "load harness: use the binary /v1/classify.bin protocol")
		trainN      = flag.Int("train", 20000, "selftest: training records")
		function    = flag.Int("function", 2, "datagen classification function")
		seed        = flag.Int64("seed", 1, "datagen seed")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("pcloudsserve: ")

	loadCfg := serve.LoadConfig{
		QPS:         *qps,
		Duration:    *duration,
		Concurrency: *concurrency,
		BatchRows:   *batchRows,
		Records:     *records,
		Function:    *function,
		Seed:        *seed,
	}
	srvCfg := serve.ServerConfig{
		Engine:         serve.EngineConfig{Workers: *workers, QueueSize: *queue, MaxBatchRows: *maxBatch},
		MaxRows:        *maxRows,
		RequestTimeout: *reqTO,
	}

	switch {
	case *loadgen != "":
		if err := runRemoteLoad(*loadgen, *useBin, loadCfg); err != nil {
			fatal(err)
		}
	case *selftest:
		if err := runSelftest(*trainN, *function, *seed, srvCfg, loadCfg); err != nil {
			fatal(err)
		}
	default:
		if *models == "" {
			fatal(fmt.Errorf("-models is required (or use -selftest / -loadgen)"))
		}
		if err := runServer(*models, *addr, *debugAddr, *poll, *drainTO, srvCfg); err != nil {
			fatal(err)
		}
	}
}

// runServer is the production path: registry + engine + HTTP API with
// hot reload and graceful drain.
func runServer(models, addr, debugAddr string, poll, drainTO time.Duration, cfg serve.ServerConfig) error {
	reg, err := serve.OpenRegistry(models)
	if err != nil {
		return err
	}
	reg.SetLogf(log.Printf)
	m := reg.Active()
	log.Printf("serving model %s (%d nodes, %d leaves, depth %d) from %s",
		m.Info.Version, m.Info.Nodes, m.Info.Leaves, m.Info.Depth, models)

	srv := serve.New(reg, cfg)
	if debugAddr != "" {
		srv.Stats().Publish("serve")
		srv.Stats().Register(obs.DefaultRegistry())
		reg.RegisterMetrics(obs.DefaultRegistry())
		obs.Publish("serve_model", func() any { return reg.Active().Info })
		obs.Publish("serve_registry", func() any {
			return map[string]any{
				"swaps":           reg.Swaps(),
				"reload_failures": reg.ReloadFailures(),
				"quarantined":     reg.Quarantined(),
				"rollbacks":       reg.Rollbacks(),
				"last_error":      reg.LastError(),
			}
		})
		http.Handle("/v1/rollback", serve.RollbackHandler(reg))
		bound, err := obs.ServeDebug(debugAddr)
		if err != nil {
			return err
		}
		log.Printf("debug endpoints (pprof, expvar, /metrics, /v1/rollback) on http://%s/", bound)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if poll > 0 {
		go reg.Watch(ctx, poll)
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if _, swapped, err := reg.Reload(); err != nil {
				log.Printf("SIGHUP reload: %v", err)
			} else if !swapped {
				log.Printf("SIGHUP reload: model unchanged")
			}
		}
	}()
	usr2 := make(chan os.Signal, 1)
	signal.Notify(usr2, syscall.SIGUSR2)
	go func() {
		for range usr2 {
			if _, err := reg.Rollback(); err != nil {
				log.Printf("SIGUSR2 rollback: %v", err)
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", addr)
		errc <- srv.ListenAndServe(addr)
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		log.Printf("%s: draining (up to %s)...", sig, drainTO)
		dctx, dcancel := context.WithTimeout(context.Background(), drainTO)
		defer dcancel()
		if err := srv.Shutdown(dctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		log.Printf("drained cleanly")
		return nil
	}
}

// runSelftest trains a small tree, serves it through a full engine, and
// reports what the serving path sustains on this machine.
func runSelftest(trainN, function int, seed int64, srvCfg serve.ServerConfig, loadCfg serve.LoadConfig) error {
	gen, err := datagen.New(datagen.Config{Function: function, Seed: seed})
	if err != nil {
		return err
	}
	data := gen.Generate(trainN)
	t0 := time.Now()
	tr, _, err := clouds.BuildInCore(clouds.Config{
		Method: clouds.SSE, QRoot: 100, SmallNodeQ: 10,
		MaxDepth: 8, MinNodeSize: 2, Seed: seed,
	}, data, nil)
	if err != nil {
		return err
	}
	log.Printf("selftest: trained on %d records in %s: %s", trainN, time.Since(t0).Round(time.Millisecond), metrics.Summarize(tr))

	model, err := serve.NewModel(tr, "selftest")
	if err != nil {
		return err
	}
	srv := serve.New(serve.NewStaticRegistry(model), srvCfg)
	defer srv.Engine().Close()

	log.Printf("selftest: driving the engine: %d workers, %d-row batches, qps=%g, %s",
		loadCfg.Concurrency, max(1, loadCfg.BatchRows), loadCfg.QPS, loadCfg.Duration)
	rep, err := serve.RunLoad(context.Background(), serve.EngineTarget{Engine: srv.Engine()}, loadCfg)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Errors > 0 {
		return fmt.Errorf("selftest: %d errored requests", rep.Errors)
	}
	return nil
}

// runRemoteLoad drives a running server over HTTP.
func runRemoteLoad(baseURL string, useBin bool, loadCfg serve.LoadConfig) error {
	tgt := serve.HTTPTarget{BaseURL: baseURL, Binary: useBin}
	if useBin {
		tgt.Schema = datagen.Schema()
	}
	log.Printf("load: driving %s (%s): %d workers, %d-row batches, qps=%g, %s",
		baseURL, map[bool]string{true: "binary", false: "JSON"}[useBin],
		loadCfg.Concurrency, max(1, loadCfg.BatchRows), loadCfg.QPS, loadCfg.Duration)
	rep, err := serve.RunLoad(context.Background(), tgt, loadCfg)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Requests == 0 {
		return fmt.Errorf("load: no request succeeded")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcloudsserve:", err)
	os.Exit(1)
}
