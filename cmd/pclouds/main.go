// Command pclouds trains a decision tree classifier over a binary dataset
// (as written by cmd/datagen) with sequential CLOUDS or simulated-parallel
// pCLOUDS, optionally prunes it with MDL, evaluates it on a test set, and
// prints the tree and build statistics.
//
// Usage:
//
//	pclouds -train train.bin [-test test.bin] [-procs 4] [-method sse]
//	        [-qroot 200] [-small 10] [-prune] [-print-tree]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/mdl"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
	"pclouds/internal/pclouds"
	"pclouds/internal/record"
	"pclouds/internal/tree"
)

func main() {
	var (
		trainPath   = flag.String("train", "", "binary training file (datagen schema)")
		testPath    = flag.String("test", "", "optional binary test file")
		procs       = flag.Int("procs", 1, "simulated processor count (1 = sequential CLOUDS)")
		method      = flag.String("method", "sse", "splitting method: ss or sse")
		splitMethod = flag.String("split-method", "sse", "split-finding protocol: sse (exact), hist (fixed-bin histograms), or vote (top-k attribute voting)")
		histBins    = flag.Int("hist-bins", 0, "fixed bin count for -split-method hist/vote (0 = 16)")
		voteTopK    = flag.Int("vote-top-k", 0, "attributes each rank nominates for -split-method vote (0 = 2)")
		qroot       = flag.Int("qroot", 200, "intervals per numeric attribute at the root")
		small       = flag.Int("small", 10, "small-node switch threshold (intervals)")
		sampleSz    = flag.Int("sample", 0, "pre-drawn sample size (0 = 10*qroot)")
		maxDepth    = flag.Int("maxdepth", 0, "depth cap (0 = unlimited)")
		seed        = flag.Int64("seed", 1, "sampling seed")
		prune       = flag.Bool("prune", false, "apply MDL pruning")
		printTree   = flag.Bool("print-tree", false, "dump the finished tree")
		boundary    = flag.String("boundary", "attribute", "boundary scheme: attribute, replicate, interval, or hybrid")
		saveModel   = flag.String("save-model", "", "write the finished model to this path")
		loadModel   = flag.String("load-model", "", "skip training: load a saved model and evaluate/classify")
		dotPath     = flag.String("dot", "", "write the finished tree as Graphviz dot to this path")
		inFormat    = flag.String("in", "binary", "training/test file format: binary, csv, or csv-auto (schema inferred; string categories allowed)")
		holdout     = flag.Float64("holdout", 0.2, "held-out fraction for csv-auto evaluation")
		regroup     = flag.Bool("regroup", false, "regroup idle processors in the small-node phase")
		noFusion    = flag.Bool("no-fusion", false, "disable fused partitioning (extra stats pass per large node)")
		traceOut    = flag.String("trace-out", "", "write a Chrome trace_event JSON of the parallel build to this path")
		progressOut = flag.String("progress-out", "", "write per-level progress records (all ranks) as JSON lines to this path")
		showStats   = flag.Bool("stats", false, "print the merged per-phase report and per-rank comm/I/O tables")
		ioPipe      = flag.Bool("io-pipeline", false, "overlap disk I/O with computation (async read-ahead/write-behind)")
		ioDepth     = flag.Int("io-depth", ooc.DefaultPipelineDepth, "pages in flight per stream when -io-pipeline is on")
		cpuprof     = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprof     = flag.String("memprofile", "", "write a heap profile to this path at exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			fatal(err)
		}
		defer stop()
	}
	if *memprof != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprof); err != nil {
				fmt.Fprintln(os.Stderr, "pclouds:", err)
			}
		}()
	}

	if *loadModel != "" {
		if err := classifyOnly(*loadModel, *testPath, *printTree); err != nil {
			fatal(err)
		}
		return
	}
	if *trainPath == "" {
		fatal(fmt.Errorf("-train is required (or use -load-model)"))
	}
	if *inFormat == "csv-auto" {
		if err := trainInferred(*trainPath, *holdout, *qroot, *small, *maxDepth, *seed, *prune, *printTree, *saveModel, *dotPath); err != nil {
			fatal(err)
		}
		return
	}

	schema := datagen.Schema()
	train, err := loadData(schema, *trainPath, *inFormat)
	if err != nil {
		fatal(err)
	}
	cfg := clouds.Config{
		QRoot:       *qroot,
		SmallNodeQ:  *small,
		SampleSize:  *sampleSz,
		MaxDepth:    *maxDepth,
		MinNodeSize: 2,
		Seed:        *seed,
		HistBins:    *histBins,
		VoteTopK:    *voteTopK,
	}
	switch *method {
	case "ss":
		cfg.Method = clouds.SS
	case "sse":
		cfg.Method = clouds.SSE
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}
	if cfg.Split, err = clouds.ParseSplitMethod(*splitMethod); err != nil {
		fatal(err)
	}

	var t *tree.Tree
	if *procs <= 1 {
		var st *clouds.BuildStats
		t, st, err = clouds.BuildInCore(cfg, train, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("sequential CLOUDS (%s): %d records -> %s\n", cfg.Method, train.Len(), metrics.Summarize(t))
		fmt.Printf("  record reads: %d, survival ratio: %.4f, large/small nodes: %d/%d\n",
			st.RecordReads, st.SurvivalRatio(), st.LargeNodes, st.SmallNodes)
	} else {
		pipe := ooc.Pipeline{Enabled: *ioPipe, Depth: *ioDepth}
		t, err = runParallel(cfg, *boundary, train, *procs, *regroup, *noFusion, *traceOut, *progressOut, *showStats, pipe)
		if err != nil {
			fatal(err)
		}
	}

	if *prune {
		pruned, st := mdl.Prune(t)
		fmt.Printf("MDL pruning: %d -> %d nodes (%d collapsed), cost %.1f -> %.1f bits\n",
			st.NodesBefore, st.NodesAfter, st.Pruned, st.CostBefore, st.CostAfter)
		t = pruned
	}

	fmt.Printf("training accuracy: %.4f\n", metrics.Accuracy(t, train))
	if *testPath != "" {
		test, err := loadData(schema, *testPath, *inFormat)
		if err != nil {
			fatal(err)
		}
		conf := metrics.Evaluate(t, test)
		fmt.Printf("test accuracy: %.4f over %d records\n", conf.Accuracy(), conf.Total())
		fmt.Print(conf)
	}
	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		if err := t.WriteDot(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("Graphviz written to %s\n", *dotPath)
	}
	if *saveModel != "" {
		if err := tree.SaveFile(t, *saveModel); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *saveModel)
	}
	if *printTree {
		t.Dump(os.Stdout)
	}
}

// classifyOnly loads a saved model and evaluates it.
func classifyOnly(modelPath, testPath string, printTree bool) error {
	t, err := tree.LoadFile(modelPath)
	if err != nil {
		return err
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%s: %w", modelPath, err)
	}
	fmt.Printf("loaded model: %s\n", metrics.Summarize(t))
	if testPath != "" {
		test, err := record.LoadFile(t.Schema, testPath)
		if err != nil {
			return err
		}
		conf := metrics.Evaluate(t, test)
		fmt.Printf("test accuracy: %.4f over %d records\n", conf.Accuracy(), conf.Total())
		fmt.Print(conf)
	}
	if printTree {
		t.Dump(os.Stdout)
	}
	return nil
}

func runParallel(cfg clouds.Config, boundary string, train *record.Dataset, p int, regroup, noFusion bool, traceOut, progressOut string, showStats bool, pipe ooc.Pipeline) (*tree.Tree, error) {
	pcfg := pclouds.Config{Clouds: cfg, RegroupIdle: regroup, DisableFusion: noFusion}
	switch boundary {
	case "attribute":
		pcfg.Boundary = pclouds.AttributeBased
	case "replicate":
		pcfg.Boundary = pclouds.FullReplication
	case "interval":
		pcfg.Boundary = pclouds.IntervalBased
	case "hybrid":
		pcfg.Boundary = pclouds.Hybrid
	default:
		return nil, fmt.Errorf("unknown boundary scheme %q", boundary)
	}
	sample := cfg.SampleFor(train)
	params := costmodel.Default()
	pcfg.CPUPerRecord = params.CPURecord * float64(1+len(train.Schema.Attrs))
	comms := comm.NewGroup(p, params)
	trees := make([]*tree.Tree, p)
	stats := make([]*pclouds.Stats, p)
	var recs []*obs.Recorder
	if traceOut != "" || showStats {
		recs = make([]*obs.Recorder, p)
		for r := range recs {
			recs[r] = obs.New(r)
		}
	}
	// One progress writer is shared by every simulated rank: ProgressWriter
	// serialises lines, so the stream interleaves ranks but never tears.
	var prog *obs.ProgressWriter
	if progressOut != "" {
		var err error
		prog, err = obs.CreateProgressFile(progressOut)
		if err != nil {
			return nil, fmt.Errorf("progress output: %w", err)
		}
	}
	errs := make([]error, p)
	done := make(chan struct{}, p)
	for r := 0; r < p; r++ {
		go func(r int) {
			defer func() { done <- struct{}{} }()
			store := ooc.NewMemStore(train.Schema, params, comms[r].Clock())
			store.SetPipeline(pipe)
			w, err := store.CreateWriter("root")
			if err != nil {
				errs[r] = err
				return
			}
			for i := r; i < train.Len(); i += p {
				if err := w.Write(train.Records[i]); err != nil {
					errs[r] = err
					return
				}
			}
			if err := w.Close(); err != nil {
				errs[r] = err
				return
			}
			comms[r].Clock().Reset()
			rcfg := pcfg
			if recs != nil {
				rcfg.Trace = recs[r]
			}
			rcfg.Progress = prog.Emit()
			trees[r], stats[r], errs[r] = pclouds.Build(rcfg, comms[r], store, "root", sample)
		}(r)
	}
	for i := 0; i < p; i++ {
		<-done
	}
	for r, err := range errs {
		if err != nil {
			prog.Close()
			return nil, fmt.Errorf("rank %d: %w", r, err)
		}
	}
	if err := prog.Close(); err != nil {
		return nil, fmt.Errorf("progress output: %w", err)
	}
	if progressOut != "" {
		fmt.Printf("per-level progress written to %s\n", progressOut)
	}
	if traceOut != "" {
		if err := obs.WriteChromeTraceFile(traceOut, recs); err != nil {
			return nil, fmt.Errorf("writing trace: %w", err)
		}
		fmt.Printf("Chrome trace written to %s\n", traceOut)
	}
	for r := 1; r < p; r++ {
		if !tree.Equal(trees[0], trees[r]) {
			return nil, fmt.Errorf("rank %d produced a different tree", r)
		}
	}
	fmt.Printf("pCLOUDS (%s, split=%s, %s, p=%d): %d records -> %s\n",
		cfg.Method, cfg.Split, pcfg.Boundary, p, train.Len(), metrics.Summarize(trees[0]))
	fmt.Printf("  simulated time: %.4fs, large nodes: %d, small tasks: %d\n",
		comm.MaxClock(comms), stats[0].LargeNodes, stats[0].SmallTasks)
	var shipped int64
	var cs comm.Stats
	for _, s := range stats {
		shipped += s.RecordsShipped
		cs.Add(s.Comm)
	}
	fmt.Printf("  records shipped: %d, traffic: %s\n", shipped, cs)
	if showStats {
		if rep := stats[0].PhaseReport; rep != "" {
			fmt.Println("per-phase report (across ranks):")
			fmt.Print(rep)
		}
		fmt.Println("per-collective traffic (all ranks summed):")
		fmt.Print(cs.Table())
		for r, s := range stats {
			fmt.Printf("rank %d I/O: %s\n", r, s.IO)
		}
	}
	return trees[0], nil
}

// trainInferred handles csv-auto mode: infer the schema (string categories
// allowed), hold out a fraction for evaluation, train, prune, report.
func trainInferred(path string, holdout float64, qroot, small, maxDepth int, seed int64, prune, printTree bool, saveModel, dotPath string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	inf, err := record.ReadCSVInferred(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Print(inf.Summarize())
	data := inf.Data
	data.Shuffle(rand.New(rand.NewSource(seed)))
	test, train := data.Split(holdout)
	if train.Len() == 0 || test.Len() == 0 {
		train, test = data, data
	}
	cfg := clouds.Config{
		Method: clouds.SSE, QRoot: qroot, SmallNodeQ: small,
		MaxDepth: maxDepth, MinNodeSize: 2, Seed: seed,
	}
	t, st, err := clouds.BuildInCore(cfg, train, nil)
	if err != nil {
		return err
	}
	fmt.Printf("trained on %d records: %s (%.1f passes)\n",
		train.Len(), metrics.Summarize(t), float64(st.RecordReads)/float64(train.Len()))
	if prune {
		pruned, pst := mdl.Prune(t)
		fmt.Printf("MDL pruning: %d -> %d nodes\n", pst.NodesBefore, pst.NodesAfter)
		t = pruned
	}
	conf := metrics.Evaluate(t, test)
	fmt.Printf("held-out accuracy: %.4f over %d records\n", conf.Accuracy(), conf.Total())
	for c := range inf.Classes {
		fmt.Printf("  %s: recall %.3f precision %.3f\n", inf.ClassOf(int32(c)), conf.Recall(c), conf.Precision(c))
	}
	if saveModel != "" {
		if err := tree.SaveFile(t, saveModel); err != nil {
			return err
		}
		fmt.Printf("model saved to %s\n", saveModel)
	}
	if dotPath != "" {
		df, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := t.WriteDot(df); err != nil {
			df.Close()
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
		fmt.Printf("Graphviz written to %s\n", dotPath)
	}
	if printTree {
		t.Dump(os.Stdout)
	}
	return nil
}

// loadData reads a dataset in the requested format.
func loadData(schema *record.Schema, path, format string) (*record.Dataset, error) {
	switch format {
	case "binary":
		return record.LoadFile(schema, path)
	case "csv":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return record.ReadCSV(schema, f)
	default:
		return nil, fmt.Errorf("unknown input format %q", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pclouds:", err)
	os.Exit(1)
}
