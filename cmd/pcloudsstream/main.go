// Command pcloudsstream runs one rank of a streaming pCLOUDS build: an
// unbounded record stream is partitioned into tumbling windows, each window
// grows or refreshes the model, and every committed window's model is
// published atomically into a registry directory that pcloudsserve hot-swaps
// from — the pipeline trains while it serves.
//
// Every rank ingests the same global stream (a synthetic generator or a
// tailed fixed-width binary file) and owns the records whose global index is
// congruent to its rank. Example (two ranks over a tailed file, serving the
// freshest model on :8080):
//
//	datagen -stream -rate 500 -o /tmp/train.bin &
//	pcloudsstream -rank 0 -addrs :7070,:7071 -source tail -tail /tmp/train.bin \
//	    -publish-dir /tmp/models &
//	pcloudsstream -rank 1 -addrs :7070,:7071 -source tail -tail /tmp/train.bin \
//	    -publish-dir /tmp/models &
//	pcloudsserve -model /tmp/models -listen :8080 -watch 1s
//
// Or let pcloudsstream supervise itself, one child per rank:
//
//	pcloudsstream -supervise -addrs :7070,:7071 -max-windows 10 \
//	    -publish-dir /tmp/models -checkpoint-dir /tmp/ckpt
//
// With -holdout-every N, every Nth global record is held out of training
// and scores each window's candidate model. The holdout error feeds a
// Page-Hinkley drift detector (an alarm forces a refresh on the next
// window, with -refresh-every as the ceiling) and a publish gate: a
// candidate that regresses more than -gate-tolerance against the
// last-published model is committed but not published. Both decisions ride
// the window commit collective, so every rank agrees on them and the
// published model sequence stays bit-identical at any rank count.
//
// Fault tolerance follows pcloudsd: a dead rank is respawned at a bumped
// generation, survivors rendezvous with it, and with -checkpoint-dir the
// group agrees on the newest window checkpoint every rank still has and
// resumes from it — the published model sequence continues bit-identically
// from the recovery window onward.
//
// Data integrity: tailing a checksummed v2 file (what datagen writes by
// default) verifies every record block's CRC as it streams — a torn
// trailing block is a writer mid-append and is polled, a corrupt interior
// block stops the build with its file offset. Window checkpoints are
// whole-file checksummed and bound to the tailed file's header checksum, so
// a damaged checkpoint degrades resume to the previous window and a resume
// against a swapped dataset is refused outright. pcloudsscrub verifies all
// of it offline.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	tcpcomm "pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/driver"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/stream"
)

var (
	rank      = flag.Int("rank", -1, "this process's rank")
	addrsFlag = flag.String("addrs", "", "comma-separated host:port per rank")

	sourceKind = flag.String("source", "synthetic", "record source: synthetic (Agrawal generator) or tail (follow a binary file)")
	tailPath   = flag.String("tail", "", "fixed-width binary record file to tail (-source tail)")
	tailPoll   = flag.Duration("tail-poll", 50*time.Millisecond, "poll interval when the tail has caught up")
	function   = flag.Int("function", 2, "generator classification function (-source synthetic)")
	dataSeed   = flag.Int64("data-seed", 1, "generator seed (-source synthetic; must match across ranks)")
	noise      = flag.Float64("noise", 0, "generator label noise probability (-source synthetic)")
	driftAfter = flag.Int64("drift-after", 0, "flip the generator concept to -drift-to after this many records (-source synthetic; 0 disables)")
	driftTo    = flag.Int("drift-to", 5, "post-drift classification function (with -drift-after)")
	limit      = flag.Int64("limit", 0, "end the stream after this many records (0 = unbounded)")

	windowRecs = flag.Int("window", 1024, "tumbling window size in global records")
	windowDur  = flag.Duration("window-duration", 0, "time-based windows instead of -window (non-deterministic boundaries)")
	maxWindows = flag.Int("max-windows", 0, "stop after this many committed windows (0 = until the stream ends)")
	sampleEv   = flag.Int("sample-every", 8, "reservoir sampling period (1 retains every record)")
	reservoir  = flag.Int("reservoir", 4096, "sample reservoir capacity (oldest evicted)")
	refreshEv  = flag.Int("refresh-every", 4, "full rebuild period in windows (windows in between grow the frontier; a ceiling when drift detection is on)")
	growMin    = flag.Int64("grow-min", 64, "minimum merged window records before a frontier leaf may split")
	holdoutEv  = flag.Int("holdout-every", 0, "hold every Nth global record out of training and score window candidates on it (0 disables drift detection and gating)")
	driftDelta = flag.Float64("drift-delta", 0, "Page-Hinkley tolerated per-window error deviation (0 = 0.005; with -holdout-every)")
	driftLam   = flag.Float64("drift-lambda", 0, "Page-Hinkley alarm threshold; an alarm schedules an adaptive refresh (0 = 0.25; with -holdout-every)")
	gateTol    = flag.Float64("gate-tolerance", 0, "publish gate: max holdout-error regression vs the last-published model (0 = 0.05, negative = exactly zero; with -holdout-every)")
	histBins   = flag.Int("hist-bins", 0, "fixed bin count for frontier sketches and refresh builds (0 = 16)")
	maxDepth   = flag.Int("maxdepth", 0, "depth cap (0 = unlimited)")
	seed       = flag.Int64("seed", 1, "build sampling seed (must match across ranks)")

	publishDir = flag.String("publish-dir", "", "registry directory to publish one model per committed window into (rank 0)")
	ckptDir    = flag.String("checkpoint-dir", "", "persist per-window checkpoints for crash recovery")
	debugAddr  = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address")

	timeout    = flag.Duration("dial-timeout", 30*time.Second, "mesh connection timeout")
	heartbeat  = flag.Duration("heartbeat", 500*time.Millisecond, "liveness frame interval (negative disables)")
	peerTO     = flag.Duration("peer-timeout", 10*time.Second, "declare a peer dead after this much silence (negative disables)")
	recvTO     = flag.Duration("recv-timeout", 0, "bound any single blocked receive (0 disables)")
	supervise  = flag.Bool("supervise", false, "launch and monitor one child process per rank, respawning dead ranks")
	maxRestart = flag.Int("max-restarts", 5, "recovery attempts after a rank failure before giving up (negative disables)")
	backoff    = flag.Duration("restart-backoff", 500*time.Millisecond, "initial delay before a recovery attempt (doubles, capped at 30s)")
	generation = flag.Uint("generation", 1, "starting build generation (set by the supervisor on respawned ranks)")
)

func main() {
	flag.Parse()

	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "pcloudsstream: %v: shutting down (send again to force exit)\n", s)
		close(stop)
		<-sigc
		fmt.Fprintln(os.Stderr, "pcloudsstream: second signal, exiting immediately")
		os.Exit(130)
	}()

	var err error
	if *supervise {
		err = runSupervisor(stop)
	} else {
		err = run(stop)
	}
	if err != nil && !errors.Is(err, stream.ErrStopped) {
		fmt.Fprintln(os.Stderr, "pcloudsstream:", err)
		os.Exit(1)
	}
}

func runSupervisor(stop <-chan struct{}) error {
	addrs := strings.Split(*addrsFlag, ",")
	if len(addrs) < 2 {
		return fmt.Errorf("usage: -supervise needs -addrs with at least 2 ranks")
	}
	if *rank >= 0 {
		return fmt.Errorf("usage: -rank and -supervise are mutually exclusive")
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("supervise: locate own binary: %w", err)
	}
	err = driver.Supervise(driver.SupervisorConfig{
		Ranks:       len(addrs),
		Generation:  uint32(*generation),
		MaxRestarts: *maxRestart,
		Backoff:     *backoff,
		Stop:        stop,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Command: func(rank int, gen uint32) *exec.Cmd {
			cmd := exec.Command(self, childArgs(rank, gen)...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if errors.Is(err, driver.ErrStopped) {
		return fmt.Errorf("supervise: interrupted: %w", err)
	}
	if err != nil {
		return fmt.Errorf("supervise: %w", err)
	}
	return nil
}

// childArgs rebuilds this invocation's explicitly-set flags for one child
// rank, replacing the supervision flags with the child's identity.
func childArgs(rank int, gen uint32) []string {
	var args []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "supervise", "rank", "generation":
			// Replaced below.
		case "debug-addr":
			// One address cannot serve every child.
		default:
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	return append(args,
		fmt.Sprintf("-rank=%d", rank),
		fmt.Sprintf("-generation=%d", gen),
		fmt.Sprintf("-max-restarts=%d", *maxRestart),
		fmt.Sprintf("-restart-backoff=%s", *backoff),
	)
}

// openSource opens a fresh source. The engine replays from record 0 after
// every recovery attempt, so each attempt needs its own open. The stop
// channel must reach the tail source: a caught-up tail blocks in its poll
// loop waiting for the writer, where the engine's own per-record stop
// check never runs.
func openSource(stop <-chan struct{}) (stream.Source, error) {
	switch *sourceKind {
	case "synthetic":
		return stream.NewSynthetic(datagen.Config{
			Function: *function, Seed: *dataSeed, Noise: *noise,
			DriftAfter: *driftAfter, DriftTo: *driftTo,
		}, *limit)
	case "tail":
		if *tailPath == "" {
			return nil, fmt.Errorf("usage: -source tail needs -tail <file>")
		}
		return stream.TailFile(datagen.Schema(), *tailPath, stream.TailOptions{Poll: *tailPoll, Limit: *limit, Stop: stop})
	default:
		return nil, fmt.Errorf("usage: unknown -source %q (want synthetic or tail)", *sourceKind)
	}
}

func run(stop <-chan struct{}) error {
	addrs := strings.Split(*addrsFlag, ",")
	if *rank < 0 || *rank >= len(addrs) {
		return fmt.Errorf("usage: need -rank in [0,%d)", len(addrs))
	}
	if *sourceKind == "tail" && *windowDur == 0 && *limit == 0 && *maxWindows == 0 {
		fmt.Fprintf(os.Stderr, "rank %d: tailing forever (no -limit or -max-windows); stop with SIGINT\n", *rank)
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: debug endpoint on http://%s/debug/pprof\n", *rank, bound)
	}

	scfg := stream.Config{
		Schema: datagen.Schema(),
		Clouds: clouds.Config{
			Split:       clouds.SplitHist,
			HistBins:    *histBins,
			MaxDepth:    *maxDepth,
			MinNodeSize: 2,
			Seed:        *seed,
		},
		WindowRecords:  *windowRecs,
		WindowDuration: *windowDur,
		MaxWindows:     *maxWindows,
		SampleEvery:    *sampleEv,
		ReservoirCap:   *reservoir,
		RefreshEvery:   *refreshEv,
		GrowMinRecords: *growMin,
		HoldoutEvery:   *holdoutEv,
		DriftDelta:     *driftDelta,
		DriftLambda:    *driftLam,
		GateTolerance:  *gateTol,
		PublishDir:     *publishDir,
		CheckpointDir:  *ckptDir,
		Stop:           stop,
		Metrics:        obs.DefaultRegistry(),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	var liveComm atomic.Pointer[tcpcomm.Comm]
	obs.Publish("pcloudsstream.comm", func() any {
		if c := liveComm.Load(); c != nil {
			return c.Stats()
		}
		return comm.Stats{}
	})
	vars := &driver.Vars{}
	obs.Publish("pcloudsstream.driver", vars.Snapshot)
	vars.Register(obs.DefaultRegistry(), *rank)

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh (%d ranks, generation %d)\n", *rank, len(addrs), *generation)
	start := time.Now()
	var res *stream.Result
	loopRes, err := driver.Loop(driver.LoopConfig{
		Rank:        *rank,
		Addrs:       addrs,
		Generation:  uint32(*generation),
		MaxRestarts: *maxRestart,
		Backoff:     *backoff,
		Comm: tcpcomm.Config{
			Params:            costmodel.Zero(),
			DialTimeout:       *timeout,
			HeartbeatInterval: *heartbeat,
			PeerTimeout:       *peerTO,
			RecvTimeout:       *recvTO,
		},
		Stop:      stop,
		Vars:      vars,
		OnAttempt: func(c *tcpcomm.Comm) { liveComm.Store(c) },
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}, func(c *tcpcomm.Comm, attempt int) error {
		src, err := openSource(stop)
		if err != nil {
			return err
		}
		defer src.Close()
		cfg := scfg
		// A checksummed v2 tail carries the dataset's identity in its header
		// checksum; binding it into window checkpoints makes resuming this
		// rank against a swapped file an error instead of silent divergence.
		if ts, ok := src.(*stream.TailSource); ok {
			cfg.SourceChecksum = ts.HeaderChecksum()
		}
		r, err := stream.Run(cfg, c, src)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(os.Stderr, "rank %d: done in %v (%s)\n", *rank, elapsed, loopRes.Comm)
	if *rank == 0 {
		fmt.Printf("streaming pCLOUDS, %d ranks: %d windows committed (%d refreshes, %d leaves grown), %d models published\n",
			len(addrs), st.Windows, st.Refreshes, st.Grown, st.Published)
		fmt.Printf("this rank owned %d of %d scanned records; sketch traffic %d bytes; reservoir %d\n",
			st.Records, st.Scanned, st.SketchBytes, st.Reservoir)
		if *holdoutEv > 0 {
			fmt.Printf("holdout: %d records, final error %.4f; drift alarms %d", st.HoldoutRecords, st.HoldoutErr, st.DriftFires)
			if st.DriftFires > 0 {
				fmt.Printf(" (first at window %d)", st.FirstDriftWindow)
			}
			fmt.Printf("; %d publishes gated off\n", st.GateSkips)
		}
		if st.ResumedAt > 0 {
			fmt.Printf("resumed from window %d checkpoint\n", st.ResumedAt)
		}
		if loopRes.Attempts > 1 {
			fmt.Printf("recovered from %d failed attempts; final generation %d\n", loopRes.Attempts-1, loopRes.Generation)
		}
		if res.Tree != nil {
			fmt.Printf("final model: %s\n", metrics.Summarize(res.Tree))
		}
	}
	return nil
}
