// Command benchrun measures the repo's fixed-seed build and serve
// benchmarks and appends one snapshot to the performance trajectory: a
// schema-versioned BENCH_<n>.json (see internal/benchfmt) that cmd/benchdiff
// compares against the previous snapshot.
//
// The build benchmark runs the real SPMD pCLOUDS algorithm on simulated
// ranks with the async I/O pipeline on, so one run yields both the
// deterministic paper metrics (simulated seconds, bytes on the wire,
// records shipped — gated) and host-dependent context (rows/s, io-wait —
// informational). The serve benchmark drives the prediction engine with the
// built tree for a fixed window.
//
// The split benchmark series builds the same workload under each
// split-finding protocol (sse, hist, vote) at 4, 16, and 64 simulated ranks
// and records each protocol's split-derivation traffic, so the trajectory
// tracks the communication saving the quantized protocols buy.
//
// The stream-drift series (skipped in -quick) streams a concept-flipping
// generator through the holdout-gated pipeline and records detection
// latency and gate rejections — informational robustness context.
//
// Usage:
//
//	benchrun [-out .] [-index auto] [-records 20000] [-procs 4] [-quick]
//	benchrun -validate BENCH_6.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"pclouds/internal/benchfmt"
	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/experiments"
	"pclouds/internal/ooc"
	"pclouds/internal/record"
	"pclouds/internal/serve"
	"pclouds/internal/stream"
	"pclouds/internal/tree"
)

func main() {
	var (
		out      = flag.String("out", ".", "directory holding the BENCH_<n>.json trajectory")
		index    = flag.String("index", "auto", `trajectory index to write ("auto" = one past the newest in -out)`)
		records  = flag.Int("records", 20000, "training records for the build benchmark")
		procs    = flag.Int("procs", 4, "simulated ranks for the build benchmark")
		seed     = flag.Int64("seed", 1, "generation and sampling seed (fixed across snapshots)")
		loadDur  = flag.Duration("load-duration", 2*time.Second, "serve benchmark window")
		quick    = flag.Bool("quick", false, "shrink the workload for a smoke run (smaller data, shorter load)")
		note     = flag.String("note", "", "free-form provenance recorded in the snapshot")
		validate = flag.String("validate", "", "validate an existing trajectory file and exit")
	)
	flag.Parse()

	if *validate != "" {
		f, err := benchfmt.Read(*validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s (schema %d, index %d, %d benchmarks)\n",
			*validate, f.SchemaVersion, f.Index, len(f.Benchmarks))
		return
	}

	if *quick {
		*records = min(*records, 4000)
		if *loadDur > 500*time.Millisecond {
			*loadDur = 500 * time.Millisecond
		}
		if *note == "" {
			*note = "quick"
		}
	}
	idx, err := resolveIndex(*index, *out)
	if err != nil {
		fatal(err)
	}

	f, err := runAll(idx, *records, *procs, *seed, *loadDur, *note, *quick)
	if err != nil {
		fatal(err)
	}
	path, err := benchfmt.Write(*out, f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trajectory snapshot written to %s\n", path)
	for _, b := range f.Benchmarks {
		for _, m := range b.Metrics {
			gate := ""
			if m.Gate {
				gate = " [gate]"
			}
			fmt.Printf("  %s/%s = %g %s%s\n", b.Name, m.Name, m.Value, m.Unit, gate)
		}
	}
}

// resolveIndex turns the -index flag into a concrete trajectory index:
// "auto" (or the pre-string-flag spelling "0") discovers the highest
// existing BENCH_<n>.json in dir and picks one past it; anything else must
// be a positive integer.
func resolveIndex(s, dir string) (int, error) {
	if s == "" || s == "auto" || s == "0" {
		existing, err := benchfmt.Indices(dir)
		if err != nil {
			return 0, err
		}
		if len(existing) == 0 {
			return 1, nil
		}
		return existing[len(existing)-1] + 1, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf(`-index %q: want a positive integer or "auto"`, s)
	}
	return n, nil
}

func runAll(index, records, procs int, seed int64, loadDur time.Duration, note string, quick bool) (*benchfmt.File, error) {
	h := experiments.DefaultHarness()
	h.Seed = seed
	h.Pipeline = ooc.Pipeline{Enabled: true}
	data, sample, err := h.Generate(records)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}

	fmt.Fprintf(os.Stderr, "benchrun: build: %d records, %d ranks, seed %d\n", records, procs, seed)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := h.Run(data, sample, procs)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	runtime.ReadMemStats(&after)
	var shipped int64
	for _, s := range res.Stats {
		shipped += s.RecordsShipped
	}
	build := benchfmt.Benchmark{
		Name: fmt.Sprintf("build/p%d", procs),
		Metrics: []benchfmt.Metric{
			{Name: "sim_seconds", Value: res.SimTime, Unit: "s", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "comm_bytes", Value: float64(res.TotalComm.BytesSent), Unit: "B", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "records_shipped", Value: float64(shipped), Unit: "records", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "allocs_per_row", Value: float64(after.Mallocs-before.Mallocs) / float64(records), Unit: "allocs", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "rows_per_sec", Value: float64(records) / res.WallTime.Seconds(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "io_wait_seconds", Value: res.TotalIO.WaitSec, Unit: "s", Better: benchfmt.LowerIsBetter},
		},
	}

	fmt.Fprintf(os.Stderr, "benchrun: serve: driving the engine for %s\n", loadDur)
	model, err := serve.NewModel(res.Tree, "bench")
	if err != nil {
		return nil, fmt.Errorf("serve model: %w", err)
	}
	srv := serve.New(serve.NewStaticRegistry(model), serve.ServerConfig{})
	defer srv.Engine().Close()
	rep, err := serve.RunLoad(context.Background(), serve.EngineTarget{Engine: srv.Engine()}, serve.LoadConfig{
		Duration:    loadDur,
		Concurrency: 8,
		BatchRows:   64,
		Seed:        seed,
	})
	if err != nil {
		return nil, fmt.Errorf("serve load: %w", err)
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("serve load: %d errored requests", rep.Errors)
	}
	load := benchfmt.Benchmark{
		Name: "serve/engine",
		Metrics: []benchfmt.Metric{
			{Name: "rows_per_sec", Value: rep.RowsPerSec(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "p99_latency_seconds", Value: rep.P99.Seconds(), Unit: "s", Better: benchfmt.LowerIsBetter},
			{Name: "shed_requests", Value: float64(rep.Shed), Unit: "requests", Better: benchfmt.LowerIsBetter},
		},
	}

	benches := []benchfmt.Benchmark{build, load}
	split, err := splitComparison(h, data, sample, quick)
	if err != nil {
		return nil, err
	}
	benches = append(benches, split...)
	sb, err := streamBench(seed, quick)
	if err != nil {
		return nil, err
	}
	benches = append(benches, sb)
	if !quick {
		sd, err := streamDriftBench(seed)
		if err != nil {
			return nil, err
		}
		benches = append(benches, sd)
		ib, err := integrityBench(h, data, sample, procs)
		if err != nil {
			return nil, err
		}
		benches = append(benches, ib)
	}

	return &benchfmt.File{
		SchemaVersion: benchfmt.SchemaVersion,
		Index:         index,
		GoVersion:     runtime.Version(),
		Note:          note,
		Benchmarks:    benches,
	}, nil
}

// splitComparison builds the benchmark workload once per split-finding
// protocol and rank count and records each run's split-derivation traffic
// (the comm.Stats delta attributed to splitting-point derivation). The
// full run covers sse/hist/vote at 4, 16, and 64 ranks and prints the
// bytes-on-the-wire comparison table; quick mode runs the single hist case
// that smoke-tests the quantized-protocol path.
func splitComparison(h experiments.Harness, data *record.Dataset, sample []record.Record, quick bool) ([]benchfmt.Benchmark, error) {
	procs := []int{4, 16, 64}
	methods := []clouds.SplitMethod{clouds.SplitSSE, clouds.SplitHist, clouds.SplitVote}
	if quick {
		procs = []int{4}
		methods = []clouds.SplitMethod{clouds.SplitHist}
	}
	bytes := make(map[string]map[int]int64)
	var benches []benchfmt.Benchmark
	for _, p := range procs {
		for _, m := range methods {
			hm := h
			hm.Split = m
			fmt.Fprintf(os.Stderr, "benchrun: split: %s at %d ranks\n", m, p)
			res, err := hm.Run(data, sample, p)
			if err != nil {
				return nil, fmt.Errorf("split %s/p%d: %w", m, p, err)
			}
			if bytes[m.String()] == nil {
				bytes[m.String()] = make(map[int]int64)
			}
			bytes[m.String()][p] = res.TotalSplitComm.BytesSent
			benches = append(benches, benchfmt.Benchmark{
				Name: fmt.Sprintf("split/%s/p%d", m, p),
				Metrics: []benchfmt.Metric{
					{Name: "split_comm_bytes", Value: float64(res.TotalSplitComm.BytesSent), Unit: "B", Better: benchfmt.LowerIsBetter, Gate: true},
					{Name: "comm_bytes", Value: float64(res.TotalComm.BytesSent), Unit: "B", Better: benchfmt.LowerIsBetter},
					{Name: "sim_seconds", Value: res.SimTime, Unit: "s", Better: benchfmt.LowerIsBetter},
				},
			})
		}
	}
	if !quick {
		fmt.Printf("split-derivation bytes on the wire (sum over ranks, lower is better):\n")
		fmt.Printf("  %5s %12s %12s %12s\n", "ranks", "sse", "hist", "vote")
		for _, p := range procs {
			fmt.Printf("  %5d %12d %12d %12d\n", p,
				bytes[clouds.SplitSSE.String()][p],
				bytes[clouds.SplitHist.String()][p],
				bytes[clouds.SplitVote.String()][p])
		}
	}
	return benches, nil
}

// streamBench runs the windowed streaming pipeline on 4 simulated ranks
// (6 windows full, 3 quick) with a registry watcher polling the publish
// directory, and records the sketch-merge traffic (deterministic —
// gated), the ingest rate, and the publish-to-ready latency: how long a
// freshly published window's model takes to become the served version.
func streamBench(seed int64, quick bool) (benchfmt.Benchmark, error) {
	const procs = 4
	windows := 6
	if quick {
		windows = 3
	}
	dir, err := os.MkdirTemp("", "benchrun-stream-")
	if err != nil {
		return benchfmt.Benchmark{}, err
	}
	defer os.RemoveAll(dir)
	cfg := stream.Config{
		Schema: datagen.Schema(),
		Clouds: clouds.Config{
			Split:       clouds.SplitHist,
			HistBins:    8,
			MaxDepth:    8,
			MinNodeSize: 2,
			Seed:        seed,
		},
		WindowRecords:  512,
		SampleEvery:    4,
		ReservoirCap:   2048,
		RefreshEvery:   3,
		GrowMinRecords: 32,
		MaxWindows:     windows,
		PublishDir:     dir,
	}

	// Watcher: poll the publish directory the way pcloudsserve's poller
	// does and record publish-to-ready latency (model mtime to swap
	// observed) for every version that becomes active.
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	var readySum time.Duration
	var readyN int
	go func() {
		defer close(watchDone)
		var reg *serve.Registry
		observe := func() {
			if m := reg.Active(); m != nil {
				if lat := time.Since(m.Info.ModTime); lat >= 0 {
					readySum += lat
					readyN++
				}
			}
		}
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-watchStop:
				return
			case <-t.C:
			}
			if reg == nil {
				if r, err := serve.OpenRegistry(dir); err == nil {
					reg = r
					observe()
				}
				continue
			}
			if _, swapped, _ := reg.Reload(); swapped {
				observe()
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "benchrun: stream: %d windows of %d records, %d ranks\n",
		windows, cfg.WindowRecords, procs)
	results := make([]*stream.Result, procs)
	start := time.Now()
	err = comm.Run(procs, costmodel.Zero(), func(c *comm.ChannelComm) error {
		src, err := stream.NewSynthetic(datagen.Config{Function: 2, Seed: 42}, 0)
		if err != nil {
			return err
		}
		defer src.Close()
		res, err := stream.Run(cfg, c, src)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		results[c.Rank()] = res
		return nil
	})
	wall := time.Since(start)
	close(watchStop)
	<-watchDone
	if err != nil {
		return benchfmt.Benchmark{}, fmt.Errorf("stream/p%d: %w", procs, err)
	}

	var sketchBytes int64
	for _, r := range results {
		sketchBytes += r.Stats.SketchBytes
	}
	ready := 0.0
	if readyN > 0 {
		ready = (readySum / time.Duration(readyN)).Seconds()
	}
	return benchfmt.Benchmark{
		Name: fmt.Sprintf("stream/p%d", procs),
		Metrics: []benchfmt.Metric{
			{Name: "sketch_merge_bytes", Value: float64(sketchBytes), Unit: "B", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "records_per_sec", Value: float64(results[0].Stats.Scanned) / wall.Seconds(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "publish_ready_seconds", Value: ready, Unit: "s", Better: benchfmt.LowerIsBetter},
		},
	}, nil
}

// streamDriftBench runs the drift-defense scenario on 4 simulated ranks:
// a holdout-scored stream whose generator flips concept mid-run. It
// records how many windows the Page-Hinkley detector needed to alarm
// after the flip and how many degraded candidates the publish gate
// rejected. Both are informational — the series characterizes reaction
// latency, it does not gate — and the run is skipped in -quick mode.
// integrityBench measures what the verifying data plane costs: the same
// build back to back with checksums off then on, trees required identical.
// The overhead series is informational, not gating — wall-time ratios are
// too noisy to gate on — with a <5% target; the frame and corruption
// counters pin that every page was actually verified and none failed.
func integrityBench(h experiments.Harness, data *record.Dataset, sample []record.Record, procs int) (benchfmt.Benchmark, error) {
	fmt.Fprintf(os.Stderr, "benchrun: integrity: measuring checksum overhead at %d ranks\n", procs)
	base, err := h.Run(data, sample, procs)
	if err != nil {
		return benchfmt.Benchmark{}, fmt.Errorf("integrity baseline: %w", err)
	}
	hi := h
	hi.Integrity = true
	integ, err := hi.Run(data, sample, procs)
	if err != nil {
		return benchfmt.Benchmark{}, fmt.Errorf("integrity build: %w", err)
	}
	if !tree.Equal(base.Tree, integ.Tree) {
		return benchfmt.Benchmark{}, fmt.Errorf("integrity build produced a different tree")
	}
	var ist ooc.IntegrityStats
	for _, s := range integ.Stats {
		ist.FramesWritten += s.Integrity.FramesWritten
		ist.FramesRead += s.Integrity.FramesRead
		ist.Corruptions += s.Integrity.Corruptions
	}
	if ist.Corruptions > 0 {
		return benchfmt.Benchmark{}, fmt.Errorf("integrity build counted %d corruptions on clean data", ist.Corruptions)
	}
	overhead := (integ.WallTime.Seconds() - base.WallTime.Seconds()) / base.WallTime.Seconds() * 100
	return benchfmt.Benchmark{
		Name: fmt.Sprintf("integrity/p%d", procs),
		Metrics: []benchfmt.Metric{
			{Name: "checksum_overhead_pct", Value: overhead, Unit: "%", Better: benchfmt.LowerIsBetter},
			{Name: "rows_per_sec", Value: float64(data.Len()) / integ.WallTime.Seconds(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "frames_verified", Value: float64(ist.FramesRead), Unit: "frames", Better: benchfmt.HigherIsBetter},
		},
	}, nil
}

func streamDriftBench(seed int64) (benchfmt.Benchmark, error) {
	const (
		procs      = 4
		windows    = 12
		windowRecs = 400
		flipAt     = 2400 // mid-window 7: windows 1-6 are stationary
	)
	dir, err := os.MkdirTemp("", "benchrun-stream-drift-")
	if err != nil {
		return benchfmt.Benchmark{}, err
	}
	defer os.RemoveAll(dir)
	cfg := stream.Config{
		Schema: datagen.Schema(),
		Clouds: clouds.Config{
			Split:       clouds.SplitHist,
			HistBins:    8,
			MaxDepth:    8,
			MinNodeSize: 2,
			Seed:        seed,
		},
		WindowRecords:  windowRecs,
		SampleEvery:    1,
		ReservoirCap:   2400,
		RefreshEvery:   100, // the detector, not the schedule, forces refreshes
		GrowMinRecords: 32,
		MaxWindows:     windows,
		HoldoutEvery:   4,
		GateTolerance:  -1, // any regression blocks the publish
		PublishDir:     dir,
	}

	fmt.Fprintf(os.Stderr, "benchrun: stream-drift: %d windows of %d records, concept flip at record %d, %d ranks\n",
		windows, windowRecs, flipAt, procs)
	results := make([]*stream.Result, procs)
	err = comm.Run(procs, costmodel.Zero(), func(c *comm.ChannelComm) error {
		src, err := stream.NewSynthetic(datagen.Config{
			Function: 2, Seed: 42, DriftAfter: flipAt, DriftTo: 5,
		}, 0)
		if err != nil {
			return err
		}
		defer src.Close()
		res, err := stream.Run(cfg, c, src)
		if err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		results[c.Rank()] = res
		return nil
	})
	if err != nil {
		return benchfmt.Benchmark{}, fmt.Errorf("stream-drift/p%d: %w", procs, err)
	}

	st := results[0].Stats
	if st.DriftFires == 0 {
		return benchfmt.Benchmark{}, fmt.Errorf("stream-drift/p%d: detector never fired on a drifting stream", procs)
	}
	firstDrifted := flipAt/windowRecs + 1 // first window containing post-flip records
	return benchfmt.Benchmark{
		Name: fmt.Sprintf("stream-drift/p%d", procs),
		Metrics: []benchfmt.Metric{
			{Name: "windows_to_detection", Value: float64(st.FirstDriftWindow - firstDrifted), Unit: "windows", Better: benchfmt.LowerIsBetter},
			{Name: "gate_rejected_publishes", Value: float64(st.GateSkips), Unit: "publishes", Better: benchfmt.LowerIsBetter},
			{Name: "final_holdout_error", Value: st.HoldoutErr, Unit: "ratio", Better: benchfmt.LowerIsBetter},
		},
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrun:", err)
	os.Exit(1)
}
