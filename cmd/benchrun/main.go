// Command benchrun measures the repo's fixed-seed build and serve
// benchmarks and appends one snapshot to the performance trajectory: a
// schema-versioned BENCH_<n>.json (see internal/benchfmt) that cmd/benchdiff
// compares against the previous snapshot.
//
// The build benchmark runs the real SPMD pCLOUDS algorithm on simulated
// ranks with the async I/O pipeline on, so one run yields both the
// deterministic paper metrics (simulated seconds, bytes on the wire,
// records shipped — gated) and host-dependent context (rows/s, io-wait —
// informational). The serve benchmark drives the prediction engine with the
// built tree for a fixed window.
//
// Usage:
//
//	benchrun [-out .] [-index 0] [-records 20000] [-procs 4] [-quick]
//	benchrun -validate BENCH_6.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pclouds/internal/benchfmt"
	"pclouds/internal/experiments"
	"pclouds/internal/ooc"
	"pclouds/internal/serve"
)

func main() {
	var (
		out      = flag.String("out", ".", "directory holding the BENCH_<n>.json trajectory")
		index    = flag.Int("index", 0, "trajectory index to write (0 = one past the newest in -out)")
		records  = flag.Int("records", 20000, "training records for the build benchmark")
		procs    = flag.Int("procs", 4, "simulated ranks for the build benchmark")
		seed     = flag.Int64("seed", 1, "generation and sampling seed (fixed across snapshots)")
		loadDur  = flag.Duration("load-duration", 2*time.Second, "serve benchmark window")
		quick    = flag.Bool("quick", false, "shrink the workload for a smoke run (smaller data, shorter load)")
		note     = flag.String("note", "", "free-form provenance recorded in the snapshot")
		validate = flag.String("validate", "", "validate an existing trajectory file and exit")
	)
	flag.Parse()

	if *validate != "" {
		f, err := benchfmt.Read(*validate)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ok: %s (schema %d, index %d, %d benchmarks)\n",
			*validate, f.SchemaVersion, f.Index, len(f.Benchmarks))
		return
	}

	if *quick {
		*records = min(*records, 4000)
		if *loadDur > 500*time.Millisecond {
			*loadDur = 500 * time.Millisecond
		}
		if *note == "" {
			*note = "quick"
		}
	}
	idx := *index
	if idx <= 0 {
		existing, err := benchfmt.Indices(*out)
		if err != nil {
			fatal(err)
		}
		idx = 1
		if len(existing) > 0 {
			idx = existing[len(existing)-1] + 1
		}
	}

	f, err := runAll(idx, *records, *procs, *seed, *loadDur, *note)
	if err != nil {
		fatal(err)
	}
	path, err := benchfmt.Write(*out, f)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trajectory snapshot written to %s\n", path)
	for _, b := range f.Benchmarks {
		for _, m := range b.Metrics {
			gate := ""
			if m.Gate {
				gate = " [gate]"
			}
			fmt.Printf("  %s/%s = %g %s%s\n", b.Name, m.Name, m.Value, m.Unit, gate)
		}
	}
}

func runAll(index, records, procs int, seed int64, loadDur time.Duration, note string) (*benchfmt.File, error) {
	h := experiments.DefaultHarness()
	h.Seed = seed
	h.Pipeline = ooc.Pipeline{Enabled: true}
	data, sample, err := h.Generate(records)
	if err != nil {
		return nil, fmt.Errorf("generate: %w", err)
	}

	fmt.Fprintf(os.Stderr, "benchrun: build: %d records, %d ranks, seed %d\n", records, procs, seed)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res, err := h.Run(data, sample, procs)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	runtime.ReadMemStats(&after)
	var shipped int64
	for _, s := range res.Stats {
		shipped += s.RecordsShipped
	}
	build := benchfmt.Benchmark{
		Name: fmt.Sprintf("build/p%d", procs),
		Metrics: []benchfmt.Metric{
			{Name: "sim_seconds", Value: res.SimTime, Unit: "s", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "comm_bytes", Value: float64(res.TotalComm.BytesSent), Unit: "B", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "records_shipped", Value: float64(shipped), Unit: "records", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "allocs_per_row", Value: float64(after.Mallocs-before.Mallocs) / float64(records), Unit: "allocs", Better: benchfmt.LowerIsBetter, Gate: true},
			{Name: "rows_per_sec", Value: float64(records) / res.WallTime.Seconds(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "io_wait_seconds", Value: res.TotalIO.WaitSec, Unit: "s", Better: benchfmt.LowerIsBetter},
		},
	}

	fmt.Fprintf(os.Stderr, "benchrun: serve: driving the engine for %s\n", loadDur)
	model, err := serve.NewModel(res.Tree, "bench")
	if err != nil {
		return nil, fmt.Errorf("serve model: %w", err)
	}
	srv := serve.New(serve.NewStaticRegistry(model), serve.ServerConfig{})
	defer srv.Engine().Close()
	rep, err := serve.RunLoad(context.Background(), serve.EngineTarget{Engine: srv.Engine()}, serve.LoadConfig{
		Duration:    loadDur,
		Concurrency: 8,
		BatchRows:   64,
		Seed:        seed,
	})
	if err != nil {
		return nil, fmt.Errorf("serve load: %w", err)
	}
	if rep.Errors > 0 {
		return nil, fmt.Errorf("serve load: %d errored requests", rep.Errors)
	}
	load := benchfmt.Benchmark{
		Name: "serve/engine",
		Metrics: []benchfmt.Metric{
			{Name: "rows_per_sec", Value: rep.RowsPerSec(), Unit: "rows/s", Better: benchfmt.HigherIsBetter},
			{Name: "p99_latency_seconds", Value: rep.P99.Seconds(), Unit: "s", Better: benchfmt.LowerIsBetter},
			{Name: "shed_requests", Value: float64(rep.Shed), Unit: "requests", Better: benchfmt.LowerIsBetter},
		},
	}

	return &benchfmt.File{
		SchemaVersion: benchfmt.SchemaVersion,
		Index:         index,
		GoVersion:     runtime.Version(),
		Note:          note,
		Benchmarks:    []benchfmt.Benchmark{build, load},
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrun:", err)
	os.Exit(1)
}
