package main

import (
	"testing"

	"pclouds/internal/benchfmt"
)

func writeSnapshot(t *testing.T, dir string, index int) {
	t.Helper()
	f := &benchfmt.File{
		SchemaVersion: benchfmt.SchemaVersion,
		Index:         index,
		Benchmarks: []benchfmt.Benchmark{{
			Name: "build/p4",
			Metrics: []benchfmt.Metric{
				{Name: "sim_seconds", Value: 1, Unit: "s", Better: benchfmt.LowerIsBetter},
			},
		}},
	}
	if _, err := benchfmt.Write(dir, f); err != nil {
		t.Fatal(err)
	}
}

func TestResolveIndex(t *testing.T) {
	dir := t.TempDir()

	// An empty trajectory starts at 1.
	for _, s := range []string{"auto", "", "0"} {
		if got, err := resolveIndex(s, dir); err != nil || got != 1 {
			t.Errorf("resolveIndex(%q, empty dir) = %d, %v; want 1", s, got, err)
		}
	}

	// auto discovers the highest BENCH_<n>.json even across gaps.
	for _, i := range []int{2, 6, 10} {
		writeSnapshot(t, dir, i)
	}
	if got, err := resolveIndex("auto", dir); err != nil || got != 11 {
		t.Errorf("resolveIndex(auto) = %d, %v; want 11", got, err)
	}

	// An explicit positive integer wins regardless of what exists.
	if got, err := resolveIndex("7", dir); err != nil || got != 7 {
		t.Errorf("resolveIndex(7) = %d, %v; want 7", got, err)
	}

	// Garbage and negatives are rejected, not treated as auto.
	for _, s := range []string{"x", "-3", "1.5", "auto7"} {
		if _, err := resolveIndex(s, dir); err == nil {
			t.Errorf("resolveIndex(%q): want error", s)
		}
	}

	// A missing directory surfaces the underlying error.
	if _, err := resolveIndex("auto", dir+"/nope"); err == nil {
		t.Error("resolveIndex(auto, missing dir): want error")
	}
}
