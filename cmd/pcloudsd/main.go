// Command pcloudsd runs one rank of a genuinely distributed pCLOUDS build
// over TCP (the hand-rolled replacement for the paper's MPI runtime). Start
// one process per rank, all with the same -addrs list and -train file; each
// process takes the records whose index is congruent to its rank, stages
// them in a private on-disk store, connects the full mesh, and builds the
// tree. Every rank finishes with the identical tree; rank 0 reports it.
//
// Example (three ranks on one machine):
//
//	pcloudsd -rank 0 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 1 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 2 -addrs :7070,:7071,:7072 -train train.bin
//
// Fault tolerance: -heartbeat/-peer-timeout/-recv-timeout tune the failure
// detector (a dead or wedged peer fails the build with an error naming the
// rank instead of hanging), and -checkpoint-dir/-resume persist per-level
// checkpoints so a killed job restarts from the last completed level and
// produces the identical tree. On failure the process exits nonzero with
// the failing phase named; a temp workdir is removed either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
	"pclouds/internal/pclouds"
	"pclouds/internal/record"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pcloudsd:", err)
		os.Exit(1)
	}
}

// run is the whole rank lifecycle. It returns (rather than exits) on
// failure so deferred cleanups — temp workdir removal, mesh teardown — run,
// and it wraps every error with the phase that produced it: a nonzero exit
// always names whether staging, the mesh, the build, or the trace failed.
func run() error {
	var (
		rank      = flag.Int("rank", -1, "this process's rank")
		addrsFlag = flag.String("addrs", "", "comma-separated host:port per rank")
		trainPath = flag.String("train", "", "binary training file (datagen schema)")
		workDir   = flag.String("workdir", "", "scratch directory for the rank's store (default: temp)")
		qroot     = flag.Int("qroot", 200, "intervals at the root")
		small     = flag.Int("small", 10, "small-node switch threshold (intervals)")
		maxDepth  = flag.Int("maxdepth", 0, "depth cap (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "sampling seed (must match across ranks)")
		timeout   = flag.Duration("dial-timeout", 30*time.Second, "mesh connection timeout")
		heartbeat = flag.Duration("heartbeat", 500*time.Millisecond, "liveness frame interval (negative disables)")
		peerTO    = flag.Duration("peer-timeout", 10*time.Second, "declare a peer dead after this much silence (negative disables)")
		recvTO    = flag.Duration("recv-timeout", 0, "bound any single blocked receive, even with live heartbeats (0 disables)")
		ckptDir   = flag.String("checkpoint-dir", "", "persist a checkpoint after every completed tree level to this directory")
		resume    = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir instead of starting fresh")
		traceOut  = flag.String("trace-out", "", "write this rank's trace JSON to this path (set on every rank)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
		ioPipe    = flag.Bool("io-pipeline", false, "overlap disk I/O with computation (async read-ahead/write-behind)")
		ioDepth   = flag.Int("io-depth", ooc.DefaultPipelineDepth, "pages in flight per stream when -io-pipeline is on")
	)
	flag.Parse()
	addrs := strings.Split(*addrsFlag, ",")
	if *rank < 0 || *rank >= len(addrs) || *trainPath == "" {
		return fmt.Errorf("usage: need -rank in [0,%d) and -train", len(addrs))
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("usage: -resume requires -checkpoint-dir")
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: debug endpoint on http://%s/debug/pprof\n", *rank, bound)
	}

	schema := datagen.Schema()
	full, err := record.LoadFile(schema, *trainPath)
	if err != nil {
		return fmt.Errorf("stage: load training data: %w", err)
	}
	cfg := clouds.Config{
		Method:      clouds.SSE,
		QRoot:       *qroot,
		SmallNodeQ:  *small,
		MaxDepth:    *maxDepth,
		MinNodeSize: 2,
		Seed:        *seed,
	}
	// The pre-drawn sample must be identical on every rank: all ranks draw
	// it from the full dataset with the shared seed before partitioning.
	sample := cfg.SampleFor(full)

	dir := *workDir
	if dir == "" {
		dir, err = os.MkdirTemp("", fmt.Sprintf("pcloudsd-rank%d-", *rank))
		if err != nil {
			return fmt.Errorf("stage: workdir: %w", err)
		}
		defer os.RemoveAll(dir)
	}
	store, err := ooc.NewFileStore(schema, filepath.Join(dir, "store"), costmodel.Zero(), nil)
	if err != nil {
		return fmt.Errorf("stage: create store: %w", err)
	}
	store.SetPipeline(ooc.Pipeline{Enabled: *ioPipe, Depth: *ioDepth})
	w, err := store.CreateWriter("root")
	if err != nil {
		return fmt.Errorf("stage: create root file: %w", err)
	}
	for i := *rank; i < full.Len(); i += len(addrs) {
		if err := w.Write(full.Records[i]); err != nil {
			w.Close()
			return fmt.Errorf("stage: write records: %w", err)
		}
	}
	if err := w.Close(); err != nil {
		return fmt.Errorf("stage: close root file: %w", err)
	}

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh (%d ranks)\n", *rank, len(addrs))
	c, err := tcpcomm.Dial(tcpcomm.Config{
		Rank:              *rank,
		Addrs:             addrs,
		Params:            costmodel.Zero(),
		DialTimeout:       *timeout,
		HeartbeatInterval: *heartbeat,
		PeerTimeout:       *peerTO,
		RecvTimeout:       *recvTO,
	})
	if err != nil {
		return fmt.Errorf("mesh: %w", err)
	}
	defer c.Close()

	// Live counters for /debug/vars; published unconditionally so that
	// -debug-addr works without -trace-out.
	obs.Publish("pcloudsd.comm", func() any { return c.Stats() })
	obs.Publish("pcloudsd.io", func() any { return store.Stats() })

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.New(*rank)
	}

	start := time.Now()
	tr, stats, err := pclouds.Build(pclouds.Config{
		Clouds:        cfg,
		Trace:         rec,
		CheckpointDir: *ckptDir,
		Resume:        *resume,
	}, c, store, "root", sample)
	elapsed := time.Since(start)
	// Report the rank's transport and disk counters even when the build
	// failed: partial traffic is exactly what a post-mortem needs.
	fmt.Fprintf(os.Stderr, "rank %d: done in %v (%s; store %s)\n", *rank, elapsed, c.Stats(), store.Stats())
	fmt.Fprintf(os.Stderr, "rank %d: per-collective traffic:\n%s", *rank, c.Stats().Table())
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: trace written to %s\n", *rank, *traceOut)
	}
	if *rank == 0 {
		fmt.Printf("pCLOUDS over TCP, %d ranks, %d records: %s\n", len(addrs), full.Len(), metrics.Summarize(tr))
		fmt.Printf("large nodes: %d, small tasks: %d, wall time: %v\n", stats.LargeNodes, stats.SmallTasks, elapsed)
		if stats.ResumedLevel > 0 {
			fmt.Printf("resumed from checkpoint at level %d, %d checkpoints written\n", stats.ResumedLevel, stats.Checkpoints)
		}
		if stats.PhaseReport != "" {
			fmt.Printf("per-phase report (across ranks):\n%s", stats.PhaseReport)
		}
		fmt.Printf("training accuracy: %.4f\n", metrics.Accuracy(tr, full))
	}
	return nil
}
