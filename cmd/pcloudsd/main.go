// Command pcloudsd runs one rank of a genuinely distributed pCLOUDS build
// over TCP (the hand-rolled replacement for the paper's MPI runtime). Start
// one process per rank, all with the same -addrs list and -train file; each
// process takes the records whose index is congruent to its rank, stages
// them in a private on-disk store, connects the full mesh, and builds the
// tree. Every rank finishes with the identical tree; rank 0 reports it.
//
// Example (three ranks on one machine):
//
//	pcloudsd -rank 0 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 1 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 2 -addrs :7070,:7071,:7072 -train train.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
	"pclouds/internal/pclouds"
	"pclouds/internal/record"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this process's rank")
		addrsFlag = flag.String("addrs", "", "comma-separated host:port per rank")
		trainPath = flag.String("train", "", "binary training file (datagen schema)")
		workDir   = flag.String("workdir", "", "scratch directory for the rank's store (default: temp)")
		qroot     = flag.Int("qroot", 200, "intervals at the root")
		small     = flag.Int("small", 10, "small-node switch threshold (intervals)")
		maxDepth  = flag.Int("maxdepth", 0, "depth cap (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "sampling seed (must match across ranks)")
		timeout   = flag.Duration("dial-timeout", 30*time.Second, "mesh connection timeout")
		traceOut  = flag.String("trace-out", "", "write this rank's trace JSON to this path (set on every rank)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
		ioPipe    = flag.Bool("io-pipeline", false, "overlap disk I/O with computation (async read-ahead/write-behind)")
		ioDepth   = flag.Int("io-depth", ooc.DefaultPipelineDepth, "pages in flight per stream when -io-pipeline is on")
	)
	flag.Parse()
	addrs := strings.Split(*addrsFlag, ",")
	if *rank < 0 || *rank >= len(addrs) || *trainPath == "" {
		fatal(fmt.Errorf("need -rank in [0,%d) and -train", len(addrs)))
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: debug endpoint on http://%s/debug/pprof\n", *rank, bound)
	}

	schema := datagen.Schema()
	full, err := record.LoadFile(schema, *trainPath)
	if err != nil {
		fatal(err)
	}
	cfg := clouds.Config{
		Method:      clouds.SSE,
		QRoot:       *qroot,
		SmallNodeQ:  *small,
		MaxDepth:    *maxDepth,
		MinNodeSize: 2,
		Seed:        *seed,
	}
	// The pre-drawn sample must be identical on every rank: all ranks draw
	// it from the full dataset with the shared seed before partitioning.
	sample := cfg.SampleFor(full)

	dir := *workDir
	if dir == "" {
		dir, err = os.MkdirTemp("", fmt.Sprintf("pcloudsd-rank%d-", *rank))
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	store, err := ooc.NewFileStore(schema, filepath.Join(dir, "store"), costmodel.Zero(), nil)
	if err != nil {
		fatal(err)
	}
	store.SetPipeline(ooc.Pipeline{Enabled: *ioPipe, Depth: *ioDepth})
	w, err := store.CreateWriter("root")
	if err != nil {
		fatal(err)
	}
	for i := *rank; i < full.Len(); i += len(addrs) {
		if err := w.Write(full.Records[i]); err != nil {
			fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh (%d ranks)\n", *rank, len(addrs))
	c, err := tcpcomm.Dial(tcpcomm.Config{
		Rank:        *rank,
		Addrs:       addrs,
		Params:      costmodel.Zero(),
		DialTimeout: *timeout,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	// Live counters for /debug/vars; published unconditionally so that
	// -debug-addr works without -trace-out.
	obs.Publish("pcloudsd.comm", func() any { return c.Stats() })
	obs.Publish("pcloudsd.io", func() any { return store.Stats() })

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.New(*rank)
	}

	start := time.Now()
	tr, stats, err := pclouds.Build(pclouds.Config{Clouds: cfg, Trace: rec}, c, store, "root", sample)
	elapsed := time.Since(start)
	// Report the rank's transport and disk counters even when the build
	// failed: partial traffic is exactly what a post-mortem needs.
	fmt.Fprintf(os.Stderr, "rank %d: done in %v (%s; store %s)\n", *rank, elapsed, c.Stats(), store.Stats())
	fmt.Fprintf(os.Stderr, "rank %d: per-collective traffic:\n%s", *rank, c.Stats().Table())
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: trace written to %s\n", *rank, *traceOut)
	}
	if *rank == 0 {
		fmt.Printf("pCLOUDS over TCP, %d ranks, %d records: %s\n", len(addrs), full.Len(), metrics.Summarize(tr))
		fmt.Printf("large nodes: %d, small tasks: %d, wall time: %v\n", stats.LargeNodes, stats.SmallTasks, elapsed)
		if stats.PhaseReport != "" {
			fmt.Printf("per-phase report (across ranks):\n%s", stats.PhaseReport)
		}
		fmt.Printf("training accuracy: %.4f\n", metrics.Accuracy(tr, full))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcloudsd:", err)
	os.Exit(1)
}
