// Command pcloudsd runs one rank of a genuinely distributed pCLOUDS build
// over TCP (the hand-rolled replacement for the paper's MPI runtime). Start
// one process per rank, all with the same -addrs list and -train file; each
// process takes the records whose index is congruent to its rank, stages
// them in a private on-disk store, connects the full mesh, and builds the
// tree. Every rank finishes with the identical tree; rank 0 reports it.
//
// Example (three ranks on one machine):
//
//	pcloudsd -rank 0 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 1 -addrs :7070,:7071,:7072 -train train.bin &
//	pcloudsd -rank 2 -addrs :7070,:7071,:7072 -train train.bin
//
// Or let pcloudsd be its own launcher: -supervise starts one child process
// per rank, monitors them, and respawns any that die at a bumped build
// generation (up to -max-restarts times, with -restart-backoff doubling
// between respawns):
//
//	pcloudsd -supervise -addrs :7070,:7071,:7072 -train train.bin \
//	    -checkpoint-dir /tmp/ckpt
//
// Surviving ranks detect the failure, tear their mesh down, and rendezvous
// with the respawned rank at the new generation; generation fencing rejects
// any traffic from the dead rank's previous incarnation. With
// -checkpoint-dir set, the rebuilt mesh auto-resumes from the newest
// checkpoint level completed on every rank, so the final tree is identical
// to an undisturbed run.
//
// Data integrity: -integrity frames every page of the on-disk store with a
// CRC-32C checksum verified on read. A corrupt page is retried, then voted
// on collectively — every rank learns which rank, file, and offset went bad
// — and with -checkpoint-dir set, the corrupt file is quarantined
// (*.quarantined, preserved for pcloudsscrub) and the build resumes from
// the newest clean checkpoint instead of failing. A checksummed training
// file's identity is bound into checkpoint manifests, so resuming against
// a swapped dataset is refused.
//
// Fault tolerance: -heartbeat/-peer-timeout/-recv-timeout tune the failure
// detector (a dead or wedged peer fails the build with an error naming the
// rank instead of hanging), and -checkpoint-dir/-resume persist per-level
// checkpoints so a killed job restarts from the last completed level and
// produces the identical tree. On failure the process exits nonzero with
// the failing phase named; SIGINT/SIGTERM run the same cleanup path (a
// second signal hard-exits); a temp workdir is removed either way.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	tcpcomm "pclouds/internal/comm/tcp"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/driver"
	"pclouds/internal/metrics"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
	"pclouds/internal/pclouds"
	"pclouds/internal/record"
)

var (
	rank        = flag.Int("rank", -1, "this process's rank")
	addrsFlag   = flag.String("addrs", "", "comma-separated host:port per rank")
	trainPath   = flag.String("train", "", "binary training file (datagen schema)")
	workDir     = flag.String("workdir", "", "scratch directory for the rank's store (default: temp)")
	qroot       = flag.Int("qroot", 200, "intervals at the root")
	small       = flag.Int("small", 10, "small-node switch threshold (intervals)")
	splitMethod = flag.String("split-method", "sse", "split-finding protocol: sse (exact), hist (fixed-bin histograms), or vote (top-k attribute voting)")
	histBins    = flag.Int("hist-bins", 0, "fixed bin count for -split-method hist/vote (0 = 16)")
	voteTopK    = flag.Int("vote-top-k", 0, "attributes each rank nominates for -split-method vote (0 = 2)")
	maxDepth    = flag.Int("maxdepth", 0, "depth cap (0 = unlimited)")
	seed        = flag.Int64("seed", 1, "sampling seed (must match across ranks)")
	timeout     = flag.Duration("dial-timeout", 30*time.Second, "mesh connection timeout")
	heartbeat   = flag.Duration("heartbeat", 500*time.Millisecond, "liveness frame interval (negative disables)")
	peerTO      = flag.Duration("peer-timeout", 10*time.Second, "declare a peer dead after this much silence (negative disables)")
	recvTO      = flag.Duration("recv-timeout", 0, "bound any single blocked receive, even with live heartbeats (0 disables)")
	ckptDir     = flag.String("checkpoint-dir", "", "persist a checkpoint after every completed tree level to this directory")
	integrity   = flag.Bool("integrity", false, "checksum the on-disk store, vote on corruption collectively, quarantine corrupt files and recover from checkpoints")
	resume      = flag.Bool("resume", false, "resume from the checkpoint in -checkpoint-dir instead of starting fresh")
	traceOut    = flag.String("trace-out", "", "write this rank's trace JSON to this path (set on every rank)")
	progressOut = flag.String("progress-out", "", "write per-level progress records as JSON lines to this path")
	debugAddr   = flag.String("debug-addr", "", "serve /debug/pprof and /debug/vars on this address (e.g. :6060)")
	ioPipe      = flag.Bool("io-pipeline", false, "overlap disk I/O with computation (async read-ahead/write-behind)")
	ioDepth     = flag.Int("io-depth", ooc.DefaultPipelineDepth, "pages in flight per stream when -io-pipeline is on")
	supervise   = flag.Bool("supervise", false, "launch and monitor one child process per rank, respawning dead ranks")
	maxRestart  = flag.Int("max-restarts", 5, "recovery attempts after a rank failure before giving up (negative disables)")
	backoff     = flag.Duration("restart-backoff", 500*time.Millisecond, "initial delay before a recovery attempt (doubles, capped at 30s)")
	generation  = flag.Uint("generation", 1, "starting build generation (set by the supervisor on respawned ranks)")
)

// phase names what the process is doing, for the signal handler's report.
var phase atomic.Value // string

func setPhase(p string) { phase.Store(p) }

func main() {
	flag.Parse()
	setPhase("startup")

	// First SIGINT/SIGTERM closes stop: the supervisor kills its children,
	// a rank unblocks its in-flight build, and either way the error return
	// path runs — deferred cleanups (temp workdir removal) included — and
	// the exit names the interrupted phase. A second signal hard-exits.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "pcloudsd: %v during %s phase: shutting down (send again to force exit)\n", s, phase.Load())
		close(stop)
		<-sigc
		fmt.Fprintln(os.Stderr, "pcloudsd: second signal, exiting immediately")
		os.Exit(130)
	}()

	var err error
	if *supervise {
		err = runSupervisor(stop)
	} else {
		err = run(stop)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcloudsd:", err)
		os.Exit(1)
	}
}

// runSupervisor launches one child pcloudsd per rank (re-execing this
// binary) and respawns dead ranks at bumped generations until the restart
// budget runs out.
func runSupervisor(stop <-chan struct{}) error {
	addrs := strings.Split(*addrsFlag, ",")
	if len(addrs) < 2 || *trainPath == "" {
		return fmt.Errorf("usage: -supervise needs -addrs with at least 2 ranks and -train")
	}
	if *rank >= 0 {
		return fmt.Errorf("usage: -rank and -supervise are mutually exclusive")
	}
	self, err := os.Executable()
	if err != nil {
		return fmt.Errorf("supervise: locate own binary: %w", err)
	}
	setPhase("supervise")
	err = driver.Supervise(driver.SupervisorConfig{
		Ranks:       len(addrs),
		Generation:  uint32(*generation),
		MaxRestarts: *maxRestart,
		Backoff:     *backoff,
		Stop:        stop,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Command: func(rank int, gen uint32) *exec.Cmd {
			cmd := exec.Command(self, childArgs(rank, gen)...)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if errors.Is(err, driver.ErrStopped) {
		return fmt.Errorf("supervise: interrupted: %w", err)
	}
	if err != nil {
		return fmt.Errorf("supervise: %w", err)
	}
	return nil
}

// childArgs rebuilds this invocation's explicitly-set flags for one child
// rank, replacing the supervision flags with the child's identity and
// making per-process paths (trace output, workdir) rank-private.
func childArgs(rank int, gen uint32) []string {
	var args []string
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "supervise", "rank", "generation":
			// Replaced below.
		case "debug-addr":
			// One address cannot serve every child; debug endpoints need
			// per-rank invocations.
		case "trace-out":
			args = append(args, "-trace-out="+rankPath(f.Value.String(), rank))
		case "progress-out":
			args = append(args, "-progress-out="+rankPath(f.Value.String(), rank))
		case "workdir":
			args = append(args, "-workdir="+filepath.Join(f.Value.String(), fmt.Sprintf("rank%d", rank)))
		default:
			args = append(args, "-"+f.Name+"="+f.Value.String())
		}
	})
	return append(args,
		fmt.Sprintf("-rank=%d", rank),
		fmt.Sprintf("-generation=%d", gen),
		fmt.Sprintf("-max-restarts=%d", *maxRestart),
		fmt.Sprintf("-restart-backoff=%s", *backoff),
	)
}

// rankPath makes path rank-private: "trace.json" -> "trace.rank2.json".
func rankPath(path string, rank int) string {
	ext := filepath.Ext(path)
	return fmt.Sprintf("%s.rank%d%s", strings.TrimSuffix(path, ext), rank, ext)
}

// run is the whole rank lifecycle. It returns (rather than exits) on
// failure so deferred cleanups — temp workdir removal, mesh teardown — run,
// and it wraps every error with the phase that produced it: a nonzero exit
// always names whether staging, the mesh, the build, or the trace failed.
func run(stop <-chan struct{}) error {
	addrs := strings.Split(*addrsFlag, ",")
	if *rank < 0 || *rank >= len(addrs) || *trainPath == "" {
		return fmt.Errorf("usage: need -rank in [0,%d) and -train", len(addrs))
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("usage: -resume requires -checkpoint-dir")
	}
	if *debugAddr != "" {
		bound, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			return fmt.Errorf("debug endpoint: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: debug endpoint on http://%s/debug/pprof\n", *rank, bound)
	}

	setPhase("stage")
	schema := datagen.Schema()
	full, err := record.LoadFile(schema, *trainPath)
	if err != nil {
		return fmt.Errorf("stage: load training data: %w", err)
	}
	// A checksummed v2 training file carries its identity in the header
	// checksum; binding it into checkpoint manifests makes a resume against
	// a swapped dataset an error instead of a silent divergence. A legacy v1
	// file has no identity to bind (dataCRC stays 0).
	var dataCRC uint32
	if hdr, ok, err := record.SniffHeader(*trainPath); err != nil {
		return fmt.Errorf("stage: training data header: %w", err)
	} else if ok {
		dataCRC = hdr.CRC
	}
	split, err := clouds.ParseSplitMethod(*splitMethod)
	if err != nil {
		return fmt.Errorf("usage: %w", err)
	}
	cfg := clouds.Config{
		Method:      clouds.SSE,
		Split:       split,
		QRoot:       *qroot,
		SmallNodeQ:  *small,
		HistBins:    *histBins,
		VoteTopK:    *voteTopK,
		MaxDepth:    *maxDepth,
		MinNodeSize: 2,
		Seed:        *seed,
	}
	// The pre-drawn sample must be identical on every rank: all ranks draw
	// it from the full dataset with the shared seed before partitioning.
	sample := cfg.SampleFor(full)

	dir := *workDir
	if dir == "" {
		dir, err = os.MkdirTemp("", fmt.Sprintf("pcloudsd-rank%d-", *rank))
		if err != nil {
			return fmt.Errorf("stage: workdir: %w", err)
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("stage: workdir: %w", err)
	}
	store, err := ooc.NewFileStore(schema, filepath.Join(dir, "store"), costmodel.Zero(), nil)
	if err != nil {
		return fmt.Errorf("stage: create store: %w", err)
	}
	store.SetPipeline(ooc.Pipeline{Enabled: *ioPipe, Depth: *ioDepth})
	if *integrity {
		store.EnableIntegrity(ooc.IntegrityOptions{})
	}
	stage := func(store *ooc.Store) error {
		w, err := store.CreateWriter("root")
		if err != nil {
			return fmt.Errorf("create root file: %w", err)
		}
		for i := *rank; i < full.Len(); i += len(addrs) {
			if err := w.Write(full.Records[i]); err != nil {
				w.Close()
				return fmt.Errorf("write records: %w", err)
			}
		}
		return w.Close()
	}

	// Live counters for /debug/vars and /metrics; published unconditionally
	// so that -debug-addr works without -trace-out. The comm pointer is
	// repointed at each recovery attempt's fresh mesh, and every registry
	// series reads its source at scrape time, so both endpoints follow the
	// current incarnation (generation rejects included).
	var liveComm atomic.Pointer[tcpcomm.Comm]
	liveStats := func() comm.Stats {
		if c := liveComm.Load(); c != nil {
			return c.Stats()
		}
		return comm.Stats{}
	}
	obs.Publish("pcloudsd.comm", func() any { return liveStats() })
	obs.Publish("pcloudsd.io", func() any { return store.Stats() })
	reg := obs.DefaultRegistry()
	obs.RegisterCommStats(reg, liveStats)
	obs.RegisterIOStats(reg, "store", store.Stats)
	if vb := store.Integrity(); vb != nil {
		obs.RegisterIntegrityStats(reg, "store", vb.Stats)
	}

	var rec *obs.Recorder
	if *traceOut != "" {
		rec = obs.New(*rank)
	}

	var prog *obs.ProgressWriter
	if *progressOut != "" {
		prog, err = obs.CreateProgressFile(*progressOut)
		if err != nil {
			return fmt.Errorf("progress: %w", err)
		}
		defer func() {
			if cerr := prog.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "rank %d: progress output: %v\n", *rank, cerr)
			}
		}()
	}

	vars := &driver.Vars{}
	obs.Publish("pcloudsd.driver", vars.Snapshot)
	vars.Register(reg, *rank)

	fmt.Fprintf(os.Stderr, "rank %d: connecting mesh (%d ranks, generation %d)\n", *rank, len(addrs), *generation)
	setPhase("build")
	start := time.Now()
	res, err := driver.RunRank(driver.Config{
		Rank:        *rank,
		Addrs:       addrs,
		Generation:  uint32(*generation),
		MaxRestarts: *maxRestart,
		Backoff:     *backoff,
		Comm: tcpcomm.Config{
			Params:            costmodel.Zero(),
			DialTimeout:       *timeout,
			HeartbeatInterval: *heartbeat,
			PeerTimeout:       *peerTO,
			RecvTimeout:       *recvTO,
		},
		Build: pclouds.Config{
			Clouds:        cfg,
			Trace:         rec,
			Progress:      prog.Emit(),
			Metrics:       reg,
			CheckpointDir: *ckptDir,
			Resume:        *resume,
			Integrity:     *integrity,
			DataChecksum:  dataCRC,
			Warnf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		},
		Store:     store,
		Stage:     stage,
		Sample:    sample,
		Stop:      stop,
		Vars:      vars,
		OnAttempt: func(c *tcpcomm.Comm) { liveComm.Store(c) },
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	tr, stats := res.Tree, res.Stats
	// Report the rank's transport and disk counters; after a recovery they
	// describe the final mesh, which is what a post-mortem needs.
	fmt.Fprintf(os.Stderr, "rank %d: done in %v (%s; store %s)\n", *rank, elapsed, res.Comm, store.Stats())
	fmt.Fprintf(os.Stderr, "rank %d: per-collective traffic:\n%s", *rank, res.Comm.Table())
	setPhase("trace")
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "rank %d: trace written to %s\n", *rank, *traceOut)
	}
	if *rank == 0 {
		fmt.Printf("pCLOUDS over TCP (split=%s), %d ranks, %d records: %s\n", cfg.Split, len(addrs), full.Len(), metrics.Summarize(tr))
		fmt.Printf("large nodes: %d, small tasks: %d, wall time: %v\n", stats.LargeNodes, stats.SmallTasks, elapsed)
		if res.Attempts > 1 {
			fmt.Printf("recovered from %d failed attempts; final generation %d\n", res.Attempts-1, res.Generation)
		}
		if stats.ResumedLevel > 0 {
			fmt.Printf("resumed from checkpoint at level %d, %d checkpoints written\n", stats.ResumedLevel, stats.Checkpoints)
		}
		if stats.CheckpointsPruned > 0 || stats.CheckpointsKept > 0 {
			fmt.Printf("checkpoint GC: %d pruned, %d kept\n", stats.CheckpointsPruned, stats.CheckpointsKept)
		}
		if stats.PhaseReport != "" {
			fmt.Printf("per-phase report (across ranks):\n%s", stats.PhaseReport)
		}
		fmt.Printf("training accuracy: %.4f\n", metrics.Accuracy(tr, full))
	}
	return nil
}
