// Command experiments regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports, produced by the
// real SPMD algorithm on simulated ranks under the calibrated cost model
// (see EXPERIMENTS.md for the paper-vs-measured record).
//
// Usage:
//
//	experiments -exp all                # everything (default scaled sizes)
//	experiments -exp fig1               # speedup
//	experiments -exp fig2               # sizeup
//	experiments -exp fig3               # scaleup
//	experiments -exp table1             # collective primitive costs
//	experiments -exp strategies         # D&C strategy ablation
//	experiments -exp splitmethods       # SS vs SSE vs direct
//	experiments -exp boundary           # boundary statistics ablation
//	experiments -exp baseline           # CLOUDS vs SPRINT baseline
//	experiments -exp pbaseline          # pCLOUDS vs ScalParC (parallel exact)
//	experiments -exp regroup            # idle-processor regrouping extension
//	experiments -exp fig1 -scale 1.0    # paper-scale record counts (slow)
package main

import (
	"flag"
	"fmt"
	"os"

	"pclouds/internal/experiments"
	"pclouds/internal/obs"
	"pclouds/internal/ooc"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, fig1, fig2, fig3, table1, strategies, splitmethods, boundary, baseline, pbaseline, regroup, lemma2, functions, phases, memory, fusion")
		scale   = flag.Float64("scale", 0.01, "record-count scale relative to the paper (1.0 = 3.6M..7.2M tuples)")
		qroot   = flag.Int("qroot", 100, "root interval count (paper: 10000 at scale 1.0)")
		seed    = flag.Int64("seed", 1, "data seed")
		format  = flag.String("format", "table", "output format: table or csv (fig1/fig2/fig3/table1 only)")
		cpuprof = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memprof = flag.String("memprofile", "", "write a heap profile to this path at exit")
		ioPipe  = flag.Bool("io-pipeline", false, "overlap disk I/O with computation (async read-ahead/write-behind)")
		ioDepth = flag.Int("io-depth", ooc.DefaultPipelineDepth, "pages in flight per stream when -io-pipeline is on")
	)
	flag.Parse()

	if *cpuprof != "" {
		stop, err := obs.StartCPUProfile(*cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memprof != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memprof); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			}
		}()
	}

	h := experiments.DefaultHarness()
	h.QRoot = *qroot
	h.Seed = *seed
	h.Pipeline = ooc.Pipeline{Enabled: *ioPipe, Depth: *ioDepth}

	// The paper's sizes: 3.6, 4.8, 6.0, 7.2 million tuples; per-processor
	// loads 0.2..0.6 million; processors 1..16.
	s := func(paperMillions float64) int {
		n := int(paperMillions * 1e6 * *scale)
		if n < 500 {
			n = 500
		}
		return n
	}
	sizes := []int{s(3.6), s(4.8), s(6.0), s(7.2)}
	perProc := []int{s(0.2), s(0.3), s(0.4), s(0.5), s(0.6)}
	procs := []int{1, 2, 4, 8, 16}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := h.Table1Collectives([]int{2, 4, 8, 16}, []int{64, 4096, 65536})
		if err != nil {
			return err
		}
		if *format == "csv" {
			return experiments.WriteTable1CSV(os.Stdout, rows)
		}
		experiments.PrintTable1(os.Stdout, rows)
		return nil
	})
	run("fig1", func() error {
		res, err := h.Fig1Speedup(sizes, procs)
		if err != nil {
			return err
		}
		if *format == "csv" {
			return experiments.WriteFig1CSV(os.Stdout, res)
		}
		experiments.PrintFig1(os.Stdout, res)
		return nil
	})
	run("fig2", func() error {
		res, err := h.Fig2Sizeup(sizes, []int{4, 8, 16})
		if err != nil {
			return err
		}
		if *format == "csv" {
			return experiments.WriteFig2CSV(os.Stdout, res)
		}
		experiments.PrintFig2(os.Stdout, res)
		return nil
	})
	run("fig3", func() error {
		res, err := h.Fig3Scaleup(perProc, procs)
		if err != nil {
			return err
		}
		if *format == "csv" {
			return experiments.WriteFig3CSV(os.Stdout, res)
		}
		experiments.PrintFig3(os.Stdout, res)
		return nil
	})
	run("strategies", func() error {
		rows, err := h.StrategiesAblation(s(1.0), 4, int64(s(0.05)))
		if err != nil {
			return err
		}
		experiments.PrintStrategies(os.Stdout, rows)
		return nil
	})
	run("splitmethods", func() error {
		rows, err := h.SplitMethodsAblation(s(1.0), s(0.3))
		if err != nil {
			return err
		}
		experiments.PrintSplitMethods(os.Stdout, rows)
		return nil
	})
	run("baseline", func() error {
		rows, err := h.BaselineAblation(s(1.0), s(0.3))
		if err != nil {
			return err
		}
		experiments.PrintBaseline(os.Stdout, rows)
		return nil
	})
	run("fusion", func() error {
		rows, err := h.FusionAblation(s(1.0), []int{1, 4, 16})
		if err != nil {
			return err
		}
		experiments.PrintFusion(os.Stdout, rows)
		return nil
	})
	run("memory", func() error {
		rows, err := h.MemoryAblation(s(1.0), []float64{1, 0.25, 0.0625, 0.0156, 0.0039})
		if err != nil {
			return err
		}
		experiments.PrintMemory(os.Stdout, rows)
		return nil
	})
	run("phases", func() error {
		rows, err := h.PhasesBreakdown(s(1.0), []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		experiments.PrintPhases(os.Stdout, rows)
		return nil
	})
	run("lemma2", func() error {
		rows, err := h.Lemma2Validation(s(6.0), []int{4, 8, 16}, []int{s(0.01), s(0.05), s(0.2), s(1.0)}, 50)
		if err != nil {
			return err
		}
		experiments.PrintLemma2(os.Stdout, rows)
		return nil
	})
	run("functions", func() error {
		rows, err := h.FunctionsSweep(s(1.0), s(0.3))
		if err != nil {
			return err
		}
		experiments.PrintFunctions(os.Stdout, rows)
		return nil
	})
	run("pbaseline", func() error {
		rows, err := h.ParallelBaselineAblation(s(0.5), s(0.2), []int{2, 4, 8})
		if err != nil {
			return err
		}
		experiments.PrintParallelBaseline(os.Stdout, rows)
		return nil
	})
	run("regroup", func() error {
		rows, err := h.RegroupAblation([]int{s(0.3), s(0.6)}, []int{4, 8, 16})
		if err != nil {
			return err
		}
		experiments.PrintRegroup(os.Stdout, rows)
		return nil
	})
	run("boundary", func() error {
		rows, err := h.BoundaryAblation(s(0.5), []int{4, 8}, []int{64, 256})
		if err != nil {
			return err
		}
		experiments.PrintBoundary(os.Stdout, rows)
		return nil
	})
}
