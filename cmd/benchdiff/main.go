// Command benchdiff compares the two newest snapshots of the performance
// trajectory (BENCH_<n>.json files written by cmd/benchrun) and exits
// nonzero when a gated metric regressed beyond the threshold. It is the
// regression gate behind `make bench-trajectory`.
//
// Usage:
//
//	benchdiff [-dir .] [-threshold 0.25]
//	benchdiff -old BENCH_5.json -new BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pclouds/internal/benchfmt"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "trajectory directory (compares the two newest snapshots)")
		oldPath   = flag.String("old", "", "explicit baseline snapshot (overrides -dir)")
		newPath   = flag.String("new", "", "explicit candidate snapshot (overrides -dir)")
		threshold = flag.Float64("threshold", 0.25, "relative worsening a gated metric may show before it regresses")
	)
	flag.Parse()

	var prev, newest *benchfmt.File
	var err error
	switch {
	case (*oldPath == "") != (*newPath == ""):
		fatal(fmt.Errorf("-old and -new must be given together"))
	case *oldPath != "":
		if prev, err = benchfmt.Read(*oldPath); err != nil {
			fatal(err)
		}
		if newest, err = benchfmt.Read(*newPath); err != nil {
			fatal(err)
		}
	default:
		if prev, newest, err = benchfmt.Latest(*dir); err != nil {
			fatal(err)
		}
		if newest == nil {
			fatal(fmt.Errorf("no BENCH_<n>.json snapshots in %s (run benchrun first)", *dir))
		}
		if prev == nil {
			fmt.Printf("only one snapshot (BENCH_%d); nothing to compare yet\n", newest.Index)
			return
		}
	}

	rep := benchfmt.Compare(prev, newest, *threshold)
	fmt.Print(rep)
	if regs := rep.Regressions(); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gated metric(s) regressed beyond %.0f%%\n",
			len(regs), 100**threshold)
		os.Exit(1)
	}
	fmt.Println("no gated regressions")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
