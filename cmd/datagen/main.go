// Command datagen generates synthetic training data with the Agrawal et
// al. generator used by the paper (function 2 by default: 6 numeric + 3
// categorical attributes, 2 classes).
//
// Usage:
//
//	datagen -n 100000 -function 2 -seed 1 -format binary -o train.bin
//	datagen -n 1000 -format csv -o - | head
//
// Binary output defaults to the checksummed v2 record format: a
// self-describing file header (whose checksum doubles as the dataset
// fingerprint checkpoints bind) followed by CRC-32C-protected record
// blocks, so every downstream reader detects torn or corrupted data
// instead of training on it. -checksum=false writes the legacy headerless
// fixed-width v1 layout.
//
// With -stream, datagen becomes a live writer: it appends binary records
// to -o at -rate records per second (creating the file if needed) until -n
// records are written or it is interrupted. The output is the layout
// pcloudsstream's tail source follows, so
//
//	datagen -stream -rate 500 -n 0 -o train.bin
//
// feeds a streaming build indefinitely. Restarting the writer against an
// existing file continues in that file's format: the v2 header is sniffed
// and verified (the record width must match) and new blocks are appended
// after the existing bytes; a legacy v1 file keeps growing as v1.
//
// Durability contract in -stream mode: records are written in whole
// checksummed blocks (one write per batch), and -fsync-every N fsyncs the
// file after at least every N records (0 = leave flushing to the OS, sync
// once at exit). A record is durable once its block has been fsynced. If
// the writer dies mid-write, the file ends in a torn block: the tail
// source treats it as a writer mid-append and polls (it never surfaces a
// partial record), and the offline scrubber reports it as a truncated
// block at its exact offset.
//
// -drift-after N flips the labelling concept to -drift-to mid-stream
// (feature rows are unchanged, labels diverge), which is how the
// drift-detection tests exercise the real tailed-file writer path:
//
//	datagen -stream -rate 500 -drift-after 5000 -drift-to 5 -o train.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pclouds/internal/datagen"
	"pclouds/internal/record"
)

func main() {
	var (
		n        = flag.Int("n", 100000, "number of records to generate (0 with -stream = unbounded)")
		fn       = flag.Int("function", 2, "classification function (1..10)")
		seed     = flag.Int64("seed", 1, "generator seed")
		noise    = flag.Float64("noise", 0, "label noise probability in [0,1)")
		format   = flag.String("format", "binary", "output format: binary or csv")
		out      = flag.String("o", "train.bin", "output path ('-' for stdout)")
		checksum = flag.Bool("checksum", true, "write the checksummed v2 record format (binary output)")
		strm     = flag.Bool("stream", false, "append binary records to -o at -rate records/s instead of writing a batch")
		rate     = flag.Float64("rate", 1000, "records per second in -stream mode")
		fsync    = flag.Int("fsync-every", 0, "in -stream mode, fsync after at least every N records (0 = OS-buffered, sync at exit)")
		drift    = flag.Int64("drift-after", 0, "flip the labelling concept to -drift-to after this many records (0 disables)")
		dto      = flag.Int("drift-to", 5, "post-drift classification function (with -drift-after)")
	)
	flag.Parse()

	g, err := datagen.New(datagen.Config{Function: *fn, Seed: *seed, Noise: *noise, DriftAfter: *drift, DriftTo: *dto})
	if err != nil {
		fatal(err)
	}
	// The file ID in the v2 header names what the bytes are: the generator
	// configuration, hashed. Deterministic, so regenerating the same dataset
	// yields the same identity (and the same header fingerprint).
	fileID := uint64(record.Checksum([]byte(fmt.Sprintf("datagen fn=%d seed=%d noise=%g drift=%d,%d",
		*fn, *seed, *noise, *drift, *dto))))

	if *strm {
		if err := streamRecords(g, *out, *n, *rate, *checksum, *fsync, fileID); err != nil {
			fatal(err)
		}
		return
	}

	data := g.Generate(*n)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch {
	case *format == "binary" && *checksum:
		err = data.WriteBinaryV2(w, fileID)
	case *format == "binary":
		err = data.WriteBinary(w)
	case *format == "csv":
		err = data.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records (%s, function %d) to %s\n", *n, *format, *fn, *out)
	}
}

// streamRecords appends binary records to path at roughly rate records per
// second. In v2 mode each batch of complete records becomes one
// checksummed block written whole; in v1 mode records are written raw.
// Either way a tailer never observes a torn record from a single write —
// and the tail source additionally waits out short reads.
func streamRecords(g *datagen.Generator, path string, n int, rate float64, checksum bool, fsyncEvery int, fileID uint64) error {
	if path == "-" {
		return fmt.Errorf("-stream needs a file path, not stdout")
	}
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	// An existing file dictates the format: sniff its header and keep
	// appending in kind, rather than mixing layouts in one file.
	recordBytes := g.Schema().RecordBytes()
	v2 := checksum
	if st, err := f.Stat(); err != nil {
		return err
	} else if st.Size() > 0 {
		hdr, ok, err := record.SniffHeader(path)
		if err != nil {
			return fmt.Errorf("datagen: existing %s: %w", path, err)
		}
		if ok && hdr.RecordBytes != uint32(recordBytes) {
			return fmt.Errorf("datagen: existing %s has record width %d, generator writes %d", path, hdr.RecordBytes, recordBytes)
		}
		if v2 != ok {
			fmt.Fprintf(os.Stderr, "datagen: existing %s is %s; continuing in that format\n",
				path, map[bool]string{true: "checksummed v2", false: "legacy v1"}[ok])
			v2 = ok
		}
	} else if v2 {
		if _, err := f.Write(record.EncodeV2Header(uint32(recordBytes), fileID)); err != nil {
			return err
		}
	}
	// Block size cap: a burst batch still fits one plausible v2 block.
	maxBlock := record.MaxV2BlockBytes / recordBytes

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	const tick = 20 * time.Millisecond
	perTick := rate * tick.Seconds()
	t := time.NewTicker(tick)
	defer t.Stop()

	written, carry, sinceSync := 0, 0.0, 0
	var payload, blk []byte
	flush := func(batch int) error {
		payload = payload[:0]
		for i := 0; i < batch; i++ {
			payload = g.Next().Encode(payload)
		}
		if v2 {
			blk = record.EncodeV2Block(blk[:0], payload)
		} else {
			blk = payload
		}
		if _, err := f.Write(blk); err != nil {
			return err
		}
		written += batch
		sinceSync += batch
		if fsyncEvery > 0 && sinceSync >= fsyncEvery {
			if err := f.Sync(); err != nil {
				return err
			}
			sinceSync = 0
		}
		return nil
	}
	for n <= 0 || written < n {
		select {
		case <-stop:
			fmt.Fprintf(os.Stderr, "datagen: interrupted after %d records\n", written)
			return f.Sync()
		case <-t.C:
		}
		carry += perTick
		batch := int(carry)
		carry -= float64(batch)
		if n > 0 && written+batch > n {
			batch = n - written
		}
		for batch > 0 {
			b := batch
			if b > maxBlock {
				b = maxBlock
			}
			if err := flush(b); err != nil {
				return err
			}
			batch -= b
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "streamed %d records (%.0f/s) to %s\n", written, rate, path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
