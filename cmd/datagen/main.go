// Command datagen generates synthetic training data with the Agrawal et
// al. generator used by the paper (function 2 by default: 6 numeric + 3
// categorical attributes, 2 classes).
//
// Usage:
//
//	datagen -n 100000 -function 2 -seed 1 -format binary -o train.bin
//	datagen -n 1000 -format csv -o - | head
//
// With -stream, datagen becomes a live writer: it appends binary records
// to -o at -rate records per second (creating the file if needed) until -n
// records are written or it is interrupted. The output is the fixed-width
// layout pcloudsstream's tail source follows, so
//
//	datagen -stream -rate 500 -n 0 -o train.bin
//
// feeds a streaming build indefinitely. -drift-after N flips the labelling
// concept to -drift-to mid-stream (feature rows are unchanged, labels
// diverge), which is how the drift-detection tests exercise the real
// tailed-file writer path:
//
//	datagen -stream -rate 500 -drift-after 5000 -drift-to 5 -o train.bin
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pclouds/internal/datagen"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "number of records to generate (0 with -stream = unbounded)")
		fn     = flag.Int("function", 2, "classification function (1..10)")
		seed   = flag.Int64("seed", 1, "generator seed")
		noise  = flag.Float64("noise", 0, "label noise probability in [0,1)")
		format = flag.String("format", "binary", "output format: binary or csv")
		out    = flag.String("o", "train.bin", "output path ('-' for stdout)")
		strm   = flag.Bool("stream", false, "append binary records to -o at -rate records/s instead of writing a batch")
		rate   = flag.Float64("rate", 1000, "records per second in -stream mode")
		drift  = flag.Int64("drift-after", 0, "flip the labelling concept to -drift-to after this many records (0 disables)")
		dto    = flag.Int("drift-to", 5, "post-drift classification function (with -drift-after)")
	)
	flag.Parse()

	g, err := datagen.New(datagen.Config{Function: *fn, Seed: *seed, Noise: *noise, DriftAfter: *drift, DriftTo: *dto})
	if err != nil {
		fatal(err)
	}

	if *strm {
		if err := streamRecords(g, *out, *n, *rate); err != nil {
			fatal(err)
		}
		return
	}

	data := g.Generate(*n)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		err = data.WriteBinary(w)
	case "csv":
		err = data.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records (%s, function %d) to %s\n", *n, *format, *fn, *out)
	}
}

// streamRecords appends binary records to path at roughly rate records per
// second. Records are written whole (one Write per batch of complete
// records), so a tailer never observes a torn record from a single write —
// and the tail source additionally waits out short reads.
func streamRecords(g *datagen.Generator, path string, n int, rate float64) error {
	if path == "-" {
		return fmt.Errorf("-stream needs a file path, not stdout")
	}
	if rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	const tick = 20 * time.Millisecond
	perTick := rate * tick.Seconds()
	t := time.NewTicker(tick)
	defer t.Stop()

	written, carry := 0, 0.0
	var buf []byte
	for n <= 0 || written < n {
		select {
		case <-stop:
			fmt.Fprintf(os.Stderr, "datagen: interrupted after %d records\n", written)
			return nil
		case <-t.C:
		}
		carry += perTick
		batch := int(carry)
		carry -= float64(batch)
		if n > 0 && written+batch > n {
			batch = n - written
		}
		if batch == 0 {
			continue
		}
		buf = buf[:0]
		for i := 0; i < batch; i++ {
			buf = g.Next().Encode(buf)
		}
		if _, err := f.Write(buf); err != nil {
			return err
		}
		written += batch
	}
	fmt.Fprintf(os.Stderr, "streamed %d records (%.0f/s) to %s\n", written, rate, path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
