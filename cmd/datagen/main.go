// Command datagen generates synthetic training data with the Agrawal et
// al. generator used by the paper (function 2 by default: 6 numeric + 3
// categorical attributes, 2 classes).
//
// Usage:
//
//	datagen -n 100000 -function 2 -seed 1 -format binary -o train.bin
//	datagen -n 1000 -format csv -o - | head
package main

import (
	"flag"
	"fmt"
	"os"

	"pclouds/internal/datagen"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "number of records to generate")
		fn     = flag.Int("function", 2, "classification function (1..10)")
		seed   = flag.Int64("seed", 1, "generator seed")
		noise  = flag.Float64("noise", 0, "label noise probability in [0,1)")
		format = flag.String("format", "binary", "output format: binary or csv")
		out    = flag.String("o", "train.bin", "output path ('-' for stdout)")
	)
	flag.Parse()

	g, err := datagen.New(datagen.Config{Function: *fn, Seed: *seed, Noise: *noise})
	if err != nil {
		fatal(err)
	}
	data := g.Generate(*n)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "binary":
		err = data.WriteBinary(w)
	case "csv":
		err = data.WriteCSV(w)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %d records (%s, function %d) to %s\n", *n, *format, *fn, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
