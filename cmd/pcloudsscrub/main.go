// Command pcloudsscrub is the offline data-plane integrity scrubber: point
// it at the directories a pclouds deployment writes — out-of-core stores,
// checkpoint trees, published model registries, record files — and it
// verifies every checksum every artifact carries, without needing a schema
// or a running cluster. Run it after an incident (the online path
// quarantines what it catches; the scrubber finds what it has not read
// yet) or from cron as a background patrol.
//
//	pcloudsscrub /data/store /data/ckpt /data/models train.bin
//
// Every file is classified by its leading magic bytes (checksummed v2
// record files, "pOC1" ooc frame streams, serialised models, "PCSTRMW3"
// window checkpoints, JSON manifests) and scrubbed accordingly; files
// with no integrity format are reported as unverifiable, never silently
// passed, and *.quarantined files are skipped. The exit status is the
// contract: 0 when nothing failed, 1 when any file failed verification,
// 2 on usage or I/O errors — so a cron line can page on nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"pclouds/internal/scrub"
)

func main() {
	quiet := flag.Bool("q", false, "print only failures and the summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pcloudsscrub [-q] path...\n")
		fmt.Fprintf(os.Stderr, "Verify every checksum in pclouds data files and directories.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var all []scrub.Result
	for _, path := range flag.Args() {
		info, err := os.Stat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pcloudsscrub: %v\n", err)
			os.Exit(2)
		}
		if info.IsDir() {
			results, _, err := scrub.Dir(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pcloudsscrub: %v\n", err)
				os.Exit(2)
			}
			all = append(all, results...)
		} else {
			all = append(all, scrub.File(path))
		}
	}
	var sum scrub.Summary
	for _, r := range all {
		sum.Add(r)
	}
	for _, r := range all {
		if *quiet && r.Status != scrub.StatusFail {
			continue
		}
		fmt.Printf("%-4s %-11s %s: %s\n", r.Status, r.Kind, r.Path, r.Detail)
	}
	fmt.Printf("pcloudsscrub: %d files scanned: %s\n", len(all), sum)
	if sum.Fail > 0 {
		os.Exit(1)
	}
}
