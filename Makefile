GO ?= go

.PHONY: all check build vet test race bench experiments examples cover clean

all: build vet test

# check is the full pre-commit gate: compile, vet, tests, and the
# concurrency-heavy packages (transports and the SPMD driver) under the
# race detector.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/comm/... ./internal/pclouds/...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure/ablation of the paper (scaled sizes).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/outofcore
	$(GO) run ./examples/distributed
	$(GO) run ./examples/strategies
	$(GO) run ./examples/customschema

# The capture files referenced by EXPERIMENTS.md.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
