GO ?= go

.PHONY: all check build vet vet-concurrency test race chaos chaos-quick fuzz bench bench-quick bench-trajectory experiments examples cover scrub clean

# BENCH_INDEX numbers the trajectory snapshot bench-trajectory writes;
# "auto" picks one past the newest BENCH_<n>.json, tracking the
# stacked-PR sequence without manual bumps.
BENCH_INDEX ?= auto

all: build vet test

# check is the full pre-commit gate: compile, vet, tests, the
# concurrency-heavy packages (the async I/O pipeline, transports and the
# SPMD driver) under the race detector, the quick self-healing subset, and
# a benchmark smoke run that validates the trajectory schema.
check: build vet test race chaos-quick bench-quick

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The ooc and comm/tcp tests enable the pipeline (read-ahead/write-behind
# goroutines and the per-tag receive queues), the fault tests drive the
# deterministic injector from concurrent ranks, the serve tests drive
# the hot-swap registry and batching engine under concurrent clients, and
# the pclouds/clouds tests run every split-finding protocol (sse, hist,
# vote) across concurrent simulated ranks, so every build exercises the
# concurrency under the race detector.
race: vet-concurrency
	$(GO) test -race ./internal/ooc/... ./internal/comm/... ./internal/fault/... ./internal/pclouds/... ./internal/clouds/... ./internal/serve/... ./internal/driver/... ./internal/stream/... ./internal/record/... ./internal/scrub/...

vet-concurrency:
	$(GO) vet ./internal/ooc/... ./internal/comm/tcp/... ./internal/fault/... ./internal/pclouds/... ./internal/clouds/... ./internal/serve/... ./internal/driver/... ./internal/stream/... ./internal/record/... ./internal/scrub/...

# Fault-injection acceptance suite: killed/wedged ranks, dropped and
# corrupted frames, slow and failing storage — every scenario must end in
# either full recovery (bit-identical tree) or a clean attributed error
# within the detection deadline, never a hang. Run under the race detector
# because fault paths are where the detector earns its keep.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/pclouds/
	$(GO) test -race ./internal/fault/... ./internal/comm/tcp/... ./internal/driver/... ./internal/stream/...
	$(GO) test -race -run 'TestCheckpoint|TestResume|TestWriteBehind|TestPrefetch' ./internal/pclouds/ ./internal/fault/ ./internal/ooc/
	$(GO) test -race -run 'TestDrift|TestStationary|TestCorruptPublish' -v ./internal/stream/
	$(GO) test -race -run 'TestRegistryQuarantines|TestRegistryRollback|TestRegistrySingleFile' ./internal/serve/
	$(GO) test -race -run 'TestCorruptionDetected' -v ./internal/pclouds/
	$(GO) test -race -run 'TestTailV2|TestCheckpointEveryBitFlip|TestCheckpointSourceBinding' ./internal/stream/
	$(GO) test -race ./internal/scrub/

# chaos-quick is the self-healing subset that gates every commit: the
# supervised kill-and-respawn acceptance test, generation fencing, and the
# checkpoint GC/auto-resume tests, under the race detector with a tight
# overall deadline so a hang fails fast instead of eating the gate.
chaos-quick: vet
	$(GO) test -race -timeout 300s -run 'TestSupervised|TestRunRank|TestSupervise' ./internal/driver/
	$(GO) test -race -timeout 300s -run 'TestGeneration|TestDoorman|TestStale' ./internal/comm/tcp/
	$(GO) test -race -timeout 300s -run 'TestCheckpointGC|TestAutoResume|TestDegraded|TestResume' ./internal/pclouds/

# Short fuzz passes: the prediction-server request decoders (malformed
# JSON/binary rows must get a 4xx, never a panic), the stream window
# checkpoint decoder (garbage must error, accepted bytes must re-encode
# identically), and the v2 record-block decoder (corrupt blocks must fail
# their CRC, never decode silently).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzClassifyRequest -fuzztime=10s ./internal/serve
	$(GO) test -run='^$$' -fuzz=FuzzDecodeCheckpoint -fuzztime=10s ./internal/stream
	$(GO) test -run='^$$' -fuzz=FuzzRecordBlock -fuzztime=10s ./internal/record

# -run='^$' keeps the benchmark pass from re-running the unit-test suite.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# bench-quick is the smoke half of the trajectory workflow: a short
# fixed-seed benchrun into a scratch directory, schema-validated and thrown
# away — it proves the benchmarks and the BENCH_<n>.json format work without
# touching the repo's trajectory or gating on performance. Quick mode
# includes one hist-protocol build (split/hist/p4), so make check always
# exercises the quantized split path end to end.
bench-quick:
	@dir=$$(mktemp -d) && \
	$(GO) run ./cmd/benchrun -quick -out $$dir && \
	$(GO) run ./cmd/benchrun -validate $$dir/BENCH_1.json && \
	rm -rf $$dir

# bench-trajectory is the full run: write BENCH_$(BENCH_INDEX).json at the
# repo root and fail if a gated metric regressed against the previous
# snapshot.
bench-trajectory:
	$(GO) run ./cmd/benchrun -out . -index $(BENCH_INDEX)
	$(GO) run ./cmd/benchdiff -dir .

# Offline integrity scrub: verify every checksum in the artifact
# directories named by SCRUB_PATHS (out-of-core stores, checkpoint trees,
# model registries, record files). Nonzero exit on any corrupt file.
SCRUB_PATHS ?= .
scrub:
	$(GO) run ./cmd/pcloudsscrub $(SCRUB_PATHS)

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure/ablation of the paper (scaled sizes).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/outofcore
	$(GO) run ./examples/distributed
	$(GO) run ./examples/strategies
	$(GO) run ./examples/customschema

# The capture files referenced by EXPERIMENTS.md.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
