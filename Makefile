GO ?= go

.PHONY: all build vet test race bench experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

# Regenerate every table/figure/ablation of the paper (scaled sizes).
experiments:
	$(GO) run ./cmd/experiments -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/outofcore
	$(GO) run ./examples/distributed
	$(GO) run ./examples/strategies
	$(GO) run ./examples/customschema

# The capture files referenced by EXPERIMENTS.md.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
