// Package bench regenerates every table and figure of the paper as Go
// benchmarks. Each benchmark reports the wall-clock cost of the real
// parallel execution plus, via b.ReportMetric, the simulated-machine
// numbers the paper's plots are made of (speedup, simulated seconds). Run:
//
//	go test -bench=. -benchmem
//
// The mapping to the paper is:
//
//	BenchmarkTable1*        -> Table 1  (collective primitives)
//	BenchmarkFig1Speedup    -> Figure 1 (speedup vs processors)
//	BenchmarkFig2Sizeup     -> Figure 2 (speedup vs records)
//	BenchmarkFig3Scaleup    -> Figure 3 (runtime at fixed records/proc)
//	BenchmarkStrategies     -> Ablation A (Section 3 strategy comparison)
//	BenchmarkSplitMethods   -> Ablation B (SS vs SSE vs direct)
//	BenchmarkBoundary       -> Ablation C (boundary statistics schemes)
//	BenchmarkBaseline       -> Ablation D (CLOUDS vs SPRINT)
//	BenchmarkParallelBaseline -> Ablation E (pCLOUDS vs ScalParC)
//
// plus micro-benchmarks of the kernels (gini evaluation, interval location,
// record codec, sequential build).
package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"pclouds/internal/clouds"
	"pclouds/internal/comm"
	"pclouds/internal/costmodel"
	"pclouds/internal/datagen"
	"pclouds/internal/experiments"
	"pclouds/internal/gini"
	"pclouds/internal/histogram"
	"pclouds/internal/mdl"
	"pclouds/internal/record"
	"pclouds/internal/sliq"
	"pclouds/internal/sprint"
	"pclouds/internal/tree"
)

func benchHarness() experiments.Harness {
	h := experiments.DefaultHarness()
	h.QRoot = 64
	h.MaxDepth = 12
	return h
}

// --- Table 1 -------------------------------------------------------------

func benchCollective(b *testing.B, p, m int, fn func(c *comm.ChannelComm, payload []byte) error) {
	b.Helper()
	var sim float64
	for i := 0; i < b.N; i++ {
		comms := comm.NewGroup(p, costmodel.Default())
		errs := make([]error, p)
		done := make(chan struct{}, p)
		for r := 0; r < p; r++ {
			go func(r int) {
				defer func() { done <- struct{}{} }()
				errs[r] = fn(comms[r], make([]byte, m))
			}(r)
		}
		for j := 0; j < p; j++ {
			<-done
		}
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		sim += comm.MaxClock(comms)
	}
	b.ReportMetric(sim/float64(b.N)*1e6, "sim-µs/op")
}

func BenchmarkTable1AllToAllBroadcast(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, m := range []int{64, 65536} {
			b.Run(fmt.Sprintf("p=%d/m=%d", p, m), func(b *testing.B) {
				benchCollective(b, p, m, func(c *comm.ChannelComm, payload []byte) error {
					_, err := comm.AllGather(c, payload)
					return err
				})
			})
		}
	}
}

func BenchmarkTable1Gather(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, m := range []int{64, 65536} {
			b.Run(fmt.Sprintf("p=%d/m=%d", p, m), func(b *testing.B) {
				benchCollective(b, p, m, func(c *comm.ChannelComm, payload []byte) error {
					_, err := comm.Gather(c, 0, payload)
					return err
				})
			})
		}
	}
}

func BenchmarkTable1GlobalCombine(b *testing.B) {
	for _, p := range []int{4, 16} {
		for _, elems := range []int{8, 8192} {
			b.Run(fmt.Sprintf("p=%d/elems=%d", p, elems), func(b *testing.B) {
				benchCollective(b, p, elems*8, func(c *comm.ChannelComm, payload []byte) error {
					v := make([]int64, elems)
					_, err := comm.AllReduceInt64(c, v, func(a, x int64) int64 { return a + x })
					return err
				})
			})
		}
	}
}

func BenchmarkTable1PrefixSum(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, 64, func(c *comm.ChannelComm, payload []byte) error {
				_, err := comm.PrefixSumInt64(c, make([]int64, 8))
				return err
			})
		})
	}
}

// --- Figures 1-3 ----------------------------------------------------------

func BenchmarkFig1Speedup(b *testing.B) {
	h := benchHarness()
	data, sample, err := h.Generate(12000)
	if err != nil {
		b.Fatal(err)
	}
	var base float64
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				r, err := h.Run(data, sample, p)
				if err != nil {
					b.Fatal(err)
				}
				sim += r.SimTime
			}
			sim /= float64(b.N)
			if p == 1 {
				base = sim
			}
			b.ReportMetric(sim, "sim-s/op")
			if base > 0 {
				b.ReportMetric(base/sim, "speedup")
			}
		})
	}
}

func BenchmarkFig2Sizeup(b *testing.B) {
	h := benchHarness()
	for _, n := range []int{6000, 12000, 24000} {
		data, sample, err := h.Generate(n)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d/p=8", n), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				r, err := h.Run(data, sample, 8)
				if err != nil {
					b.Fatal(err)
				}
				sim += r.SimTime
			}
			b.ReportMetric(sim/float64(b.N), "sim-s/op")
		})
	}
}

func BenchmarkFig3Scaleup(b *testing.B) {
	h := benchHarness()
	const perProc = 3000
	for _, p := range []int{1, 2, 4, 8} {
		data, sample, err := h.Generate(perProc * p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("perproc=%d/p=%d", perProc, p), func(b *testing.B) {
			var sim float64
			for i := 0; i < b.N; i++ {
				r, err := h.Run(data, sample, p)
				if err != nil {
					b.Fatal(err)
				}
				sim += r.SimTime
			}
			b.ReportMetric(sim/float64(b.N), "sim-s/op")
		})
	}
}

// --- Ablations -------------------------------------------------------------

func BenchmarkStrategies(b *testing.B) {
	h := benchHarness()
	rows, err := h.StrategiesAblation(2000, 4, 200)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.Strategy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.StrategiesAblation(2000, 4, 200); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.SimTime, "sim-s")
			b.ReportMetric(float64(row.Redistributed), "redistributed")
		})
	}
}

func BenchmarkSplitMethods(b *testing.B) {
	h := benchHarness()
	data, sample, err := h.Generate(8000)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []clouds.Method{clouds.SS, clouds.SSE} {
		b.Run(m.String(), func(b *testing.B) {
			cfg := clouds.Config{Method: m, QRoot: 64, QMin: 8, SmallNodeQ: 4, MaxDepth: 12, MinNodeSize: 2, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, _, err := clouds.BuildInCore(cfg, data, sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("direct", func(b *testing.B) {
		cfg := clouds.Config{Method: clouds.SSE, QRoot: 64, QMin: 8, SmallNodeQ: 65, MaxDepth: 12, MinNodeSize: 2, Seed: 1}
		for i := 0; i < b.N; i++ {
			if _, _, err := clouds.BuildInCore(cfg, data, sample); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBoundary(b *testing.B) {
	h := benchHarness()
	rows, err := h.BoundaryAblation(4000, []int{4}, []int{64})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.Method.String(), func(b *testing.B) {
			hb := h
			hb.Boundary = row.Method
			data, sample, err := hb.Generate(4000)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := hb.Run(data, sample, 4); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.CommBytes), "comm-bytes")
		})
	}
}

func BenchmarkBaseline(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	data := g.Generate(8000)
	b.Run("CLOUDS-SSE", func(b *testing.B) {
		cfg := clouds.Config{Method: clouds.SSE, QRoot: 64, QMin: 8, SmallNodeQ: 4, MaxDepth: 12, MinNodeSize: 2, Seed: 1}
		for i := 0; i < b.N; i++ {
			if _, _, err := clouds.BuildInCore(cfg, data, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SLIQ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sliq.Build(sliq.Config{MaxDepth: 12, MinNodeSize: 2}, data); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SPRINT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sprint.Build(sprint.Config{MaxDepth: 12, MinNodeSize: 2}, data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkParallelBaseline(b *testing.B) {
	h := benchHarness()
	rows, err := h.ParallelBaselineAblation(3000, 1000, []int{4})
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(row.System, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := h.ParallelBaselineAblation(3000, 1000, []int{4}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.CommBytes), "comm-bytes")
			b.ReportMetric(row.SimTime, "sim-s")
		})
	}
}

// --- Kernel micro-benchmarks -------------------------------------------------

func BenchmarkGiniSplitIndex(b *testing.B) {
	left := []int64{1234, 5678}
	right := []int64{8765, 4321}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gini.SplitIndex(left, right)
	}
}

func BenchmarkGiniLowerBound(b *testing.B) {
	left := []int64{100, 200}
	interval := []int64{50, 60}
	total := []int64{500, 500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = gini.LowerBound(left, interval, total)
	}
}

func BenchmarkIntervalLocate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	sample := make([]float64, 10000)
	for i := range sample {
		sample[i] = rng.Float64()
	}
	iv := histogram.FromSample(sample, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = iv.Locate(sample[i%len(sample)])
	}
}

func BenchmarkRecordCodec(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	rec := g.Next()
	schema := g.Schema()
	buf := rec.Encode(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = rec.Encode(buf[:0])
		var out record.Record
		if _, err := out.Decode(schema, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialBuild(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	data := g.Generate(10000)
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 64, SmallNodeQ: 10, MaxDepth: 12, Seed: 1}
	sample := cfg.SampleFor(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clouds.BuildInCore(cfg, data, sample); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(data.Len()), "records")
}

func BenchmarkDatagen(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}

func BenchmarkTreeEncodeDecode(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1})
	data := g.Generate(20000)
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 128, SmallNodeQ: 10, Seed: 1}
	tr, _, err := clouds.BuildInCore(cfg, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	blob := tree.Encode(tr)
	b.ReportMetric(float64(tr.NumNodes()), "nodes")
	b.ReportMetric(float64(len(blob)), "bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob = tree.Encode(tr)
		if _, err := tree.Decode(data.Schema, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDLPrune(b *testing.B) {
	g, _ := datagen.New(datagen.Config{Function: 2, Seed: 1, Noise: 0.1})
	data := g.Generate(20000)
	cfg := clouds.Config{Method: clouds.SSE, QRoot: 128, SmallNodeQ: 10, Seed: 1}
	tr, _, err := clouds.BuildInCore(cfg, data, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(tr.NumNodes()), "nodes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mdl.Prune(tr)
	}
}

func BenchmarkScatter(b *testing.B) {
	for _, p := range []int{4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			benchCollective(b, p, 4096, func(c *comm.ChannelComm, payload []byte) error {
				var parts [][]byte
				if c.Rank() == 0 {
					parts = make([][]byte, p)
					for i := range parts {
						parts[i] = payload
					}
				}
				_, err := comm.Scatter(c, 0, parts)
				return err
			})
		})
	}
}
